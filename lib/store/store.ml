module Obs = Pinpoint_obs.Obs
module Pta = Pinpoint_pta.Pta
module Seg = Pinpoint_seg.Seg
module Rv = Pinpoint_summary.Rv
module Vf = Pinpoint_summary.Vf

type stats = {
  spills : int;
  faults : int;
  evictions : int;
  resident : int;
  file_bytes : int;
  row : Intern.stats;
  expr_hits : int;
  expr_misses : int;
}

type t = {
  dir : string;
  blob : Blob.t;
  env : Codec.env;
  index : (string, int * int) Hashtbl.t;
  seg_lru : Seg.t Resident.t;
  pta_lru : Pta.t Resident.t;
  rv_lru : Rv.entry option array Resident.t;
  vfs : (string, Vf.t) Hashtbl.t;
      (* per-checker tables: tiny (ints only), kept resident *)
  sizes : (string, int * int) Hashtbl.t; (* fname -> (n_vertices, n_edges) *)
  mutable spills : int;
  mutable faults : int;
  mutable evictions : int;
  mutable pub_spills : int; (* last published counter values *)
  mutable pub_faults : int;
  mutable pub_evictions : int;
  mutable pub_row_hits : int;
  mutable pub_row_misses : int;
  lock : Mutex.t;
}

let create ~dir ?(max_resident = 64) () =
  let blob = Blob.create ~dir in
  let env =
    Codec.create_env
      ~append:(fun b -> Blob.append blob b)
      ~fetch:(fun ~off ~len -> Blob.read blob ~off ~len)
  in
  {
    dir;
    blob;
    env;
    index = Hashtbl.create 1024;
    seg_lru = Resident.create ~cap:max_resident;
    pta_lru = Resident.create ~cap:max_resident;
    rv_lru = Resident.create ~cap:max_resident;
    vfs = Hashtbl.create 4;
    sizes = Hashtbl.create 1024;
    spills = 0;
    faults = 0;
    evictions = 0;
    pub_spills = 0;
    pub_faults = 0;
    pub_evictions = 0;
    pub_row_hits = 0;
    pub_row_misses = 0;
    lock = Mutex.create ();
  }

let locked t f = Mutex.protect t.lock f

let register_program t prog =
  locked t (fun () ->
      List.iter (Codec.register_func t.env) (Pinpoint_ir.Prog.functions prog))

let register_fn t f = locked t (fun () -> Codec.register_func t.env f)

(* --- unlocked internals -------------------------------------------- *)

let put_artifact t name (b : bytes) =
  let off = Blob.append t.blob b in
  Hashtbl.replace t.index name (off, Bytes.length b);
  t.spills <- t.spills + 1

let artifact t name =
  match Hashtbl.find_opt t.index name with
  | None -> None
  | Some (off, len) ->
    t.faults <- t.faults + 1;
    Some (Blob.read t.blob ~off ~len)

let evicted t l = t.evictions <- t.evictions + List.length l

let put_pta_ t fname pta =
  put_artifact t ("p/" ^ fname) (Codec.enc_pta t.env pta);
  evicted t (Resident.put t.pta_lru fname pta)

let pta_of_ t fname =
  match Resident.find t.pta_lru fname with
  | Some _ as r -> r
  | None -> (
    match artifact t ("p/" ^ fname) with
    | None -> None
    | Some b ->
      let pta = Codec.dec_pta t.env b in
      evicted t (Resident.put t.pta_lru fname pta);
      Some pta)

let put_seg_ t fname seg =
  put_artifact t ("s/" ^ fname) (Codec.enc_seg t.env seg);
  Hashtbl.replace t.sizes fname (Seg.n_vertices seg, Seg.n_edges seg);
  evicted t (Resident.put t.seg_lru fname seg)

let seg_of_ t fname =
  match Resident.find t.seg_lru fname with
  | Some _ as r -> r
  | None -> (
    match artifact t ("s/" ^ fname) with
    | None -> None
    | Some b -> (
      match pta_of_ t fname with
      | None -> None (* a SEG without its PTA: treat as absent *)
      | Some pta ->
        let seg = Codec.dec_seg t.env ~pta b in
        evicted t (Resident.put t.seg_lru fname seg);
        Some seg))

let put_rv_ t fname entries =
  put_artifact t ("r/" ^ fname) (Codec.enc_rv t.env fname entries);
  evicted t (Resident.put t.rv_lru fname entries)

let rv_of_ t fname =
  match Resident.find t.rv_lru fname with
  | Some _ as r -> r
  | None -> (
    match artifact t ("r/" ^ fname) with
    | None -> None
    | Some b ->
      let entries = Codec.dec_rv t.env b in
      evicted t (Resident.put t.rv_lru fname entries);
      Some entries)

(* --- public (locked) ------------------------------------------------ *)

let put_pta t fname pta = locked t (fun () -> put_pta_ t fname pta)
let pta_of t fname = locked t (fun () -> pta_of_ t fname)
let put_seg t fname seg = locked t (fun () -> put_seg_ t fname seg)
let seg_of t fname = locked t (fun () -> seg_of_ t fname)
let put_rv t fname entries = locked t (fun () -> put_rv_ t fname entries)
let rv_of t fname = locked t (fun () -> rv_of_ t fname)

let rv_backend t : Rv.backend =
  {
    Rv.persist = put_rv t;
    fetch = rv_of t;
    forget =
      (fun fname ->
        locked t (fun () ->
            Resident.remove t.rv_lru fname;
            Hashtbl.remove t.index ("r/" ^ fname)));
  }

let put_vf t checker vf =
  locked t (fun () ->
      put_artifact t ("v/" ^ checker) (Codec.enc_vf t.env vf);
      Hashtbl.replace t.vfs checker vf)

let vf_of t checker =
  locked t (fun () ->
      match Hashtbl.find_opt t.vfs checker with
      | Some _ as r -> r
      | None -> (
        match artifact t ("v/" ^ checker) with
        | None -> None
        | Some b ->
          let vf = Codec.dec_vf t.env b in
          Hashtbl.replace t.vfs checker vf;
          Some vf))

let remove_fn t fname =
  locked t (fun () ->
      List.iter
        (fun prefix -> Hashtbl.remove t.index (prefix ^ fname))
        [ "p/"; "s/"; "r/" ];
      Resident.remove t.pta_lru fname;
      Resident.remove t.seg_lru fname;
      Resident.remove t.rv_lru fname;
      Hashtbl.remove t.sizes fname)

let seal t =
  locked t (fun () ->
      if not (Blob.is_sealed t.blob) then begin
        let a = Arena.create ~cap:(3 * Hashtbl.length t.index) () in
        let entries =
          Hashtbl.fold (fun name extent acc -> (name, extent) :: acc) t.index []
          |> List.sort (fun (x, _) (y, _) -> compare x y)
        in
        Arena.push_list a
          (fun (name, (off, len)) ->
            Arena.push_str a name;
            Arena.push a off;
            Arena.push a len)
          entries;
        Blob.seal t.blob ~index:(Arena.to_bytes a)
      end)

let is_sealed t = locked t (fun () -> Blob.is_sealed t.blob)
let dir t = t.dir
let file_bytes t = locked t (fun () -> Blob.size t.blob)

let seg_sizes t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ (nv, ne) (av, ae) -> (av + nv, ae + ne))
        t.sizes (0, 0))

let drop_resident t =
  locked t (fun () ->
      Resident.clear t.seg_lru;
      Resident.clear t.pta_lru;
      Resident.clear t.rv_lru;
      Hashtbl.reset t.vfs)

let resident_ t =
  Resident.length t.seg_lru + Resident.length t.pta_lru
  + Resident.length t.rv_lru

let stats t =
  locked t (fun () ->
      {
        spills = t.spills;
        faults = t.faults;
        evictions = t.evictions;
        resident = resident_ t;
        file_bytes = Blob.size t.blob;
        row = (Codec.stats t.env).Codec.row;
        expr_hits = (Codec.stats t.env).Codec.expr_hits;
        expr_misses = (Codec.stats t.env).Codec.expr_misses;
      })

let c_spills = Obs.counter "store.spills"
let c_faults = Obs.counter "store.faults"
let c_evictions = Obs.counter "store.evictions"
let c_row_hits = Obs.counter "store.dedup.row_hits"
let c_row_misses = Obs.counter "store.dedup.row_misses"
let g_resident = Obs.gauge "store.resident_fns"
let g_file_bytes = Obs.gauge "store.file_bytes"
let g_hit_rate = Obs.gauge "store.dedup_hit_rate"
let g_row_bytes_saved = Obs.gauge "store.dedup.row_bytes_saved"
let g_expr_hits = Obs.gauge "store.dedup.expr_hits"
let g_expr_misses = Obs.gauge "store.dedup.expr_misses"

let publish_obs t =
  locked t (fun () ->
      let cs = Codec.stats t.env in
      let row = cs.Codec.row in
      Obs.add c_spills (t.spills - t.pub_spills);
      Obs.add c_faults (t.faults - t.pub_faults);
      Obs.add c_evictions (t.evictions - t.pub_evictions);
      Obs.add c_row_hits (row.Intern.hits - t.pub_row_hits);
      Obs.add c_row_misses (row.Intern.misses - t.pub_row_misses);
      t.pub_spills <- t.spills;
      t.pub_faults <- t.faults;
      t.pub_evictions <- t.evictions;
      t.pub_row_hits <- row.Intern.hits;
      t.pub_row_misses <- row.Intern.misses;
      Obs.set_gauge g_resident (float_of_int (resident_ t));
      Obs.set_gauge g_file_bytes (float_of_int (Blob.size t.blob));
      Obs.set_gauge g_row_bytes_saved (float_of_int row.Intern.bytes_saved);
      Obs.set_gauge g_expr_hits (float_of_int cs.Codec.expr_hits);
      Obs.set_gauge g_expr_misses (float_of_int cs.Codec.expr_misses);
      let total = row.Intern.hits + row.Intern.misses in
      Obs.set_gauge g_hit_rate
        (if total = 0 then 0.0
         else float_of_int row.Intern.hits /. float_of_int total))

let close t = locked t (fun () -> Blob.close t.blob)

type reopened = {
  epoch : int;
  artifacts : (string * (int * int)) list;
  read : off:int -> len:int -> bytes;
  finish : unit -> unit;
}

let reopen ~dir =
  match Blob.open_latest ~dir with
  | None -> None
  | Some blob -> (
    match Blob.index blob with
    | None ->
      Blob.close blob;
      None
    | Some idx ->
      let c = Arena.of_bytes idx in
      let artifacts =
        Arena.read_list c (fun c ->
            let name = Arena.read_str c in
            let off = Arena.read c in
            let len = Arena.read c in
            (name, (off, len)))
      in
      Some
        {
          epoch = Blob.epoch blob;
          artifacts;
          read = (fun ~off ~len -> Blob.read blob ~off ~len);
          finish = (fun () -> Blob.close blob);
        })
