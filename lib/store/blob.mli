(** Epoch-versioned append-only blob file with an mmap read path.

    Lifecycle: a store is built by appending extents to [dir]/store.tmp
    (plain [write]/[lseek] I/O — the OS page cache keeps warm reads
    cheap while the file is still growing), then {!seal} writes the
    caller's index, a fixed-size checksummed trailer, fsyncs, and
    renames to [dir]/store.epNNNNNN.bin — the same temp+rename epoch
    discipline as the server snapshot, so a crash mid-seal leaves the
    previous epoch intact.  Sealed files are memory-mapped (Bigarray),
    so resident cost is page-cache pressure, not heap.

    {!open_latest} walks epochs newest-first and returns the first file
    whose trailer validates (magic, bounds, FNV-64 of the index) —
    torn or truncated writes fall back to the previous epoch. *)

type t

val create : dir:string -> t
(** Start a writable blob at [dir]/store.tmp (creates [dir] if needed).
    The next epoch number is one past the highest sealed epoch present. *)

val append : t -> bytes -> int
(** Append an extent, returning its offset.  Writable blobs only. *)

val read : t -> off:int -> len:int -> bytes
(** Read an extent back (file I/O while writable, mmap once sealed). *)

val size : t -> int

val seal : t -> index:bytes -> unit
(** Append [index], write the trailer, fsync, rename to the epoch file
    and switch to the mmap read path.  Idempotent. *)

val is_sealed : t -> bool
val epoch : t -> int
val path : t -> string
(** Current backing file (store.tmp while writing, epoch file after). *)

val index : t -> bytes option
(** The index extent recorded at seal time ([None] while writing). *)

val open_latest : dir:string -> t option
(** Newest sealed epoch in [dir] whose trailer validates, mmap'd. *)

val close : t -> unit
