(** Row interning: identical serialised rows are stored once.

    Points-to rows and SEG edge rows are massively repetitive across a
    large program — generated (and real) code repeats the same local
    shapes, and per-function ids are dense from zero, so byte-identical
    rows recur across functions.  The bank keys rows by their bytes and
    hands back the blob extent of the first occurrence; hit/miss and
    saved-byte counters feed the dedup gauges. *)

type t

type stats = {
  hits : int;
  misses : int;
  bytes_saved : int;       (** Bytes NOT appended thanks to dedup. *)
  bytes_written : int;     (** Bytes actually appended for rows. *)
}

val create : unit -> t

val put : t -> append:(bytes -> int) -> bytes -> int * int
(** [put t ~append row] returns the [(off, len)] of [row] in the blob,
    appending it via [append] only on first sight. *)

val stats : t -> stats
