(** Bounded LRU of resident (decoded) artifacts, keyed by string.

    A doubly-linked recency list over a hashtable: [find] and [put]
    are O(1), eviction pops the least recently used entry.  Capacity
    [<= 0] means unbounded (store-off semantics for tests). *)

type 'a t

val create : cap:int -> 'a t

val find : 'a t -> string -> 'a option
(** Touches the entry (moves it to most-recently-used). *)

val put : 'a t -> string -> 'a -> (string * 'a) list
(** Insert or refresh; returns the entries evicted to stay within
    capacity (empty when unbounded or when the key merely refreshed). *)

val remove : 'a t -> string -> unit
val mem : 'a t -> string -> bool
val length : 'a t -> int
val clear : 'a t -> unit
