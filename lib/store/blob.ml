let magic = "PNPSTOR1"
let trailer_len = 40 (* index_off | index_len | fnv64 | epoch | magic, 8B each *)

(* FNV-1a over the index bytes, in Int64 so the full 64-bit constants
   apply.  Integrity check against torn/partial writes, not tampering. *)
let fnv64 (b : bytes) =
  let open Int64 in
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to Bytes.length b - 1 do
    h := mul (logxor !h (of_int (Char.code (Bytes.get b i)))) 0x100000001b3L
  done;
  !h

type mapped = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type state =
  | Writing of { fd : Unix.file_descr; mutable size : int }
  | Sealed of { map : mapped; size : int; index_off : int; index_len : int }
  | Closed

type t = {
  dir : string;
  mutable state : state;
  mutable epoch : int;
  mutable path : string;
}

let epoch_file dir ep = Filename.concat dir (Printf.sprintf "store.ep%06d.bin" ep)
let tmp_file dir = Filename.concat dir "store.tmp"

let sealed_epochs dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.to_list entries
    |> List.filter_map (fun name ->
           try Scanf.sscanf name "store.ep%06d.bin%!" (fun ep -> Some ep)
           with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
    |> List.sort (fun a b -> compare b a) (* newest first *)

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir =
  mkdir_p dir;
  let next_epoch = match sealed_epochs dir with [] -> 1 | ep :: _ -> ep + 1 in
  let path = tmp_file dir in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  { dir; state = Writing { fd; size = 0 }; epoch = next_epoch; path }

let really_write fd b =
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd b !written (n - !written)
  done

let really_read fd b =
  let n = Bytes.length b in
  let got = ref 0 in
  while !got < n do
    let k = Unix.read fd b !got (n - !got) in
    if k = 0 then invalid_arg "Blob.read: short read";
    got := !got + k
  done

let append t b =
  match t.state with
  | Writing w ->
    ignore (Unix.lseek w.fd 0 Unix.SEEK_END);
    really_write w.fd b;
    let off = w.size in
    w.size <- w.size + Bytes.length b;
    off
  | Sealed _ | Closed -> invalid_arg "Blob.append: blob is sealed"

let size t =
  match t.state with
  | Writing w -> w.size
  | Sealed s -> s.size
  | Closed -> 0

let read t ~off ~len =
  if off < 0 || len < 0 || off + len > size t then
    invalid_arg
      (Printf.sprintf "Blob.read: extent (%d,%d) out of bounds (size %d)" off len
         (size t));
  match t.state with
  | Writing w ->
    ignore (Unix.lseek w.fd off Unix.SEEK_SET);
    let b = Bytes.create len in
    really_read w.fd b;
    b
  | Sealed s ->
    let b = Bytes.create len in
    for i = 0 to len - 1 do
      Bytes.unsafe_set b i (Bigarray.Array1.unsafe_get s.map (off + i))
    done;
    b
  | Closed -> invalid_arg "Blob.read: blob is closed"

let le64_of_int n =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int n);
  b

let mmap_readonly path size =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Bigarray.array1_of_genarray
        (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| size |]))

let seal t ~index =
  match t.state with
  | Sealed _ -> ()
  | Closed -> invalid_arg "Blob.seal: blob is closed"
  | Writing w ->
    let index_off = append t index in
    let index_len = Bytes.length index in
    ignore (Unix.lseek w.fd 0 Unix.SEEK_END);
    really_write w.fd (le64_of_int index_off);
    really_write w.fd (le64_of_int index_len);
    let cksum = Bytes.create 8 in
    Bytes.set_int64_le cksum 0 (fnv64 index);
    really_write w.fd cksum;
    really_write w.fd (le64_of_int t.epoch);
    really_write w.fd (Bytes.of_string magic);
    let size = w.size + trailer_len in
    Unix.fsync w.fd;
    Unix.close w.fd;
    let final = epoch_file t.dir t.epoch in
    Sys.rename (tmp_file t.dir) final;
    let map = mmap_readonly final size in
    t.path <- final;
    t.state <- Sealed { map; size; index_off; index_len }

let is_sealed t = match t.state with Sealed _ -> true | _ -> false
let epoch t = t.epoch
let path t = t.path

let index t =
  match t.state with
  | Sealed s -> Some (read t ~off:s.index_off ~len:s.index_len)
  | Writing _ | Closed -> None

let validate_and_open dir ep =
  let path = epoch_file dir ep in
  match Unix.stat path with
  | exception Unix.Unix_error _ -> None
  | st ->
    let size = st.Unix.st_size in
    if size < trailer_len then None
    else begin
      let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
      let result =
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            ignore (Unix.lseek fd (size - trailer_len) Unix.SEEK_SET);
            let tr = Bytes.create trailer_len in
            really_read fd tr;
            let g i = Int64.to_int (Bytes.get_int64_le tr (8 * i)) in
            let index_off = g 0
            and index_len = g 1
            and cksum = Bytes.get_int64_le tr 16
            and file_epoch = g 3 in
            if
              Bytes.sub_string tr 32 8 <> magic
              || index_off < 0 || index_len < 0
              || index_off + index_len > size - trailer_len
              || file_epoch <> ep
            then None
            else begin
              ignore (Unix.lseek fd index_off Unix.SEEK_SET);
              let idx = Bytes.create index_len in
              really_read fd idx;
              if fnv64 idx <> cksum then None
              else Some (index_off, index_len)
            end)
      in
      match result with
      | None -> None
      | Some (index_off, index_len) ->
        let map = mmap_readonly path size in
        Some
          {
            dir;
            state = Sealed { map; size; index_off; index_len };
            epoch = ep;
            path;
          }
    end

let open_latest ~dir =
  let rec first = function
    | [] -> None
    | ep :: rest -> (
      match validate_and_open dir ep with
      | exception _ -> first rest
      | None -> first rest
      | some -> some)
  in
  first (sealed_epochs dir)

let close t =
  (match t.state with
  | Writing w -> ( try Unix.close w.fd with Unix.Unix_error _ -> ())
  | Sealed _ | Closed -> ());
  t.state <- Closed
