(** Artifact codec: flatten PTA results, SEGs and RV/VF summaries into
    arenas and rebuild them losslessly in the same process.

    The stable node-id scheme rides on ids the pipeline already makes
    deterministic:

    - variables are per-function with dense [vid]s, so [(fname, vid)]
      names a variable stably; decode returns the {e original resident}
      [Var.t] from a catalog filled at encode time, preserving the
      lazily-allocated SMT symbol identity;
    - statements have dense per-function [sid]s;
    - formulas are hash-consed, so a stored node DAG re-interned
      bottom-up via {!Pinpoint_smt.Expr.of_node} yields physically
      identical expressions — reports stay byte-identical;
    - SMT symbols are process-global ints and are stored directly.

    Repetition is exploited twice: whole formulas are banked once per
    hash-cons id, and serialised rows (points-to rows, SEG adjacency
    rows) are interned by content — per-function ids are dense from
    zero, so structurally identical functions produce byte-identical
    rows that dedup across the whole program. *)

type env

val create_env :
  append:(bytes -> int) -> fetch:(off:int -> len:int -> bytes) -> env
(** [append] stores a record and returns its offset; [fetch] reads one
    back.  Both are called re-entrantly from encode/decode. *)

val register_func : env -> Pinpoint_ir.Func.t -> unit

type stats = {
  row : Intern.stats;          (** row-level dedup *)
  expr_hits : int;             (** formulas reused from the bank *)
  expr_misses : int;           (** formulas serialised *)
}

val stats : env -> stats

val enc_pta : env -> Pinpoint_pta.Pta.t -> bytes
val dec_pta : env -> bytes -> Pinpoint_pta.Pta.t

val enc_seg : env -> Pinpoint_seg.Seg.t -> bytes
val dec_seg : env -> pta:Pinpoint_pta.Pta.t -> bytes -> Pinpoint_seg.Seg.t
(** The function name stored in the artifact must match [pta]'s. *)

val enc_rv : env -> string -> Pinpoint_summary.Rv.entry option array -> bytes
val dec_rv : env -> bytes -> Pinpoint_summary.Rv.entry option array

val enc_vf : env -> Pinpoint_summary.Vf.t -> bytes
val dec_vf : env -> bytes -> Pinpoint_summary.Vf.t
