(** The Symbolic Expression Graph (paper §3.2, Definition 3.2).

    One SEG per function.  Vertices are SSA variables [v@s] (a variable is
    defined once, so its definition vertex is written [v]); operator
    vertices are realised as hash-consed {!Pinpoint_smt.Expr} nodes, which
    gives the same maximal sharing as Definition 3.2's O set.

    The graph exposes:

    - {e value-flow edges} between variables, labelled with the condition
      under which the flow happens.  [Copy] edges preserve the value
      (assignment, φ selection, store-to-load through memory — the sparse
      edges a use-after-free path follows); [Operand] edges feed operators
      (taint checkers follow both kinds);
    - {e uses}: the [v@s] vertices where a value is consumed — dereference
      bases, call arguments ([free(c)] is the canonical source), return
      operands;
    - the {e DD} and {e CD} constraint queries of §3.2.2 (Examples
      3.7/3.8), each returning the constraint together with the sets of
      function parameters [P] and return-value receivers [R] whose
      constraints are "lost" locally (the [PC(·)^P_R] notation of
      §3.3.1). *)

type ekind = Copy | Operand

type edge = {
  dst : Pinpoint_ir.Var.t;
  cond : Pinpoint_smt.Expr.t;
  kind : ekind;
}

type ukind =
  | Deref of int  (** dereferenced (as a load/store base) with depth k *)
  | Call_arg of { callee : string; arg_index : int }
  | Ret_op of int  (** operand position in the (extended) return *)

type use = { uvar : Pinpoint_ir.Var.t; sid : int; ukind : ukind }

(** A receiver whose constraint must be recovered from the callee's RV
    summary (the bold part of Equation 2). *)
type recv_dep = {
  rvar : Pinpoint_ir.Var.t;
  call_sid : int;
  callee : string;
  ret_index : int;  (** position in the callee's extended return *)
  args : Pinpoint_ir.Stmt.operand list;  (** actuals at that call site *)
}

(** A constraint with its lost dependences: [PC(·)^P_R] / [DD(·)^P_R]. *)
type cres = {
  f : Pinpoint_smt.Expr.t;
  params : Pinpoint_ir.Var.Set.t;  (** the P set: interface variables *)
  recvs : recv_dep list;           (** the R set *)
}

type t

val build : Pinpoint_ir.Func.t -> Pinpoint_pta.Pta.t -> t
(** Build the SEG of a transformed, SSA, gated function. *)

val func : t -> Pinpoint_ir.Func.t
val pta : t -> Pinpoint_pta.Pta.t

val truncate : t -> keep:float -> t
(** Deterministically keep only a [keep] fraction (clamped to [0,1]) of
    each vertex's out-edges and of the use list — the fault injector's
    "truncated SEG" class.  Removing edges only removes candidate paths,
    so truncation degrades recall, never soundness of the remaining
    reports. *)

val of_parts :
  func:Pinpoint_ir.Func.t ->
  pta:Pinpoint_pta.Pta.t ->
  succs:(Pinpoint_ir.Var.t * edge list) list ->
  preds:(Pinpoint_ir.Var.t * edge list) list ->
  uses:use list ->
  n_control_edges:int ->
  t
(** Reassemble a SEG from stored parts (the artifact store's decode
    path).  Adjacency lists and uses are taken verbatim — per-variable
    edge order must be exactly what {!build} produced, since traversal
    order follows it — while derived state (CDG, def table, symbol
    registry, memos) is recomputed from the resident IR exactly as
    {!build} computes it.  Feeding back {!fold_succs}/{!fold_preds}/
    {!uses} of a built SEG yields an observably identical graph. *)

val fold_succs :
  t -> init:'a -> f:('a -> Pinpoint_ir.Var.t -> edge list -> 'a) -> 'a
val fold_preds :
  t -> init:'a -> f:('a -> Pinpoint_ir.Var.t -> edge list -> 'a) -> 'a
(** Iterate the full adjacency tables (encode path of the store). *)

val n_control_edges : t -> int
(** The control-dependence edge count included in {!n_edges}. *)

val succs : t -> Pinpoint_ir.Var.t -> edge list
val preds : t -> Pinpoint_ir.Var.t -> edge list

val uses : t -> use list
val uses_of : t -> Pinpoint_ir.Var.t -> use list

val def_of : t -> Pinpoint_ir.Var.t -> Pinpoint_ir.Stmt.t option

val dd : t -> Pinpoint_ir.Var.t -> cres
(** Data-dependence constraint of a variable (Example 3.7), memoized. *)

val dd_expr : t -> Pinpoint_smt.Expr.t -> cres
(** DD-closure over all variables occurring in a formula. *)

val cd_stmt : t -> int -> cres
(** Control-dependence constraint of a statement (Example 3.8): the
    condition under which the statement is reachable. *)

val cd_stmt_split : t -> int -> Pinpoint_smt.Expr.t * cres
(** Like {!cd_stmt} but keeps the branch literals apart from the
    data-dependence facts: returns [(lits, facts)] where [lits] is the
    conjunction of branch-variable literals and [facts] their (always
    true) defining constraints.  Clients that need to reason about the
    {e negation} of reachability (e.g. the leak checker's "no free
    covers this path") must negate [lits] only and keep [facts]
    asserted. *)

val var_of_symbol : t -> Pinpoint_smt.Symbol.t -> Pinpoint_ir.Var.t option

val alloc_address : string -> int -> int
(** Distinct non-zero abstract address per allocation site
    (function name, sid); lets the solver prove [malloc() != null] and
    distinguish allocations.  Thread-safe (the table is shared across
    functions); numbers are first-come, so parallel drivers should call
    {!reserve_addresses} first to pin them in program order. *)

val reserve_addresses : Pinpoint_ir.Func.t list -> unit
(** Assign an abstract address to every allocation site of the given
    functions, in program order.  Called once (sequentially) before segs
    are built in parallel so addresses — which appear inside formulas —
    are identical under any schedule and job count. *)

val n_vertices : t -> int
val n_edges : t -> int
(** Size metrics reported by the Figure 7/8 benchmarks (data +
    control-dependence edges). *)

val dot : t -> string
