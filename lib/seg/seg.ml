open Pinpoint_ir
module E = Pinpoint_smt.Expr
module Sym = Pinpoint_smt.Symbol
module Pta = Pinpoint_pta.Pta

type ekind = Copy | Operand

type edge = { dst : Var.t; cond : E.t; kind : ekind }

type ukind =
  | Deref of int
  | Call_arg of { callee : string; arg_index : int }
  | Ret_op of int

type use = { uvar : Var.t; sid : int; ukind : ukind }

type recv_dep = {
  rvar : Var.t;
  call_sid : int;
  callee : string;
  ret_index : int;
  args : Stmt.operand list;
}

type cres = { f : E.t; params : Var.Set.t; recvs : recv_dep list }

type t = {
  func : Func.t;
  pta : Pta.t;
  cdg : Cdg.t;
  succ : edge list Var.Tbl.t;
  pred : edge list Var.Tbl.t;
  all_uses : use list;
  use_tbl : use list Var.Tbl.t;
  def_tbl : Stmt.t Var.Tbl.t;
  block_of : (int, int) Hashtbl.t;
  sym2var : (Sym.t, Var.t) Hashtbl.t;
  dd_memo : cres Var.Tbl.t;
  cd_block_memo : (int, cres) Hashtbl.t;
  mutable n_control_edges : int;
  lock : Mutex.t;
      (* Guards the memo tables: checkers running in different worker
         domains share segs through interprocedural steps, so the public
         DD/CD queries serialise per seg (contention is per-function, not
         global).  Internal recursion runs with the lock already held. *)
}

let func t = t.func
let pta t = t.pta

(* Globally distinct abstract addresses for allocation sites.  The table
   is shared across functions (and thus across worker domains building
   segs in parallel), so it is mutex-guarded; [reserve_addresses] lets the
   driver assign the numbers in program order up front so they stay
   deterministic under any schedule. *)
let alloc_addrs : (string * int, int) Hashtbl.t = Hashtbl.create 256
let alloc_next = ref 0
let alloc_lock = Mutex.create ()

let alloc_address fname sid =
  Mutex.protect alloc_lock (fun () ->
      match Hashtbl.find_opt alloc_addrs (fname, sid) with
      | Some a -> a
      | None ->
        incr alloc_next;
        let a = 1_000_000 + !alloc_next in
        Hashtbl.add alloc_addrs (fname, sid) a;
        a)

let reserve_addresses (funcs : Func.t list) =
  List.iter
    (fun (f : Func.t) ->
      Func.iter_stmts f (fun _blk s ->
          match s.Stmt.kind with
          | Stmt.Alloc _ -> ignore (alloc_address f.Func.fname s.Stmt.sid)
          | _ -> ()))
    funcs

let true_res = { f = E.tru; params = Var.Set.empty; recvs = [] }

let merge_res a b =
  if a == true_res then b
  else if b == true_res then a
  else
    {
      f = E.and_ a.f b.f;
      params = Var.Set.union a.params b.params;
      recvs =
        a.recvs
        @ List.filter
            (fun r -> not (List.exists (fun r' -> Var.equal r'.rvar r.rvar) a.recvs))
            b.recvs;
    }

let with_f res f = { res with f = E.and_ res.f f }

let add_edge t src e =
  let cur = Option.value (Var.Tbl.find_opt t.succ src) ~default:[] in
  Var.Tbl.replace t.succ src (e :: cur);
  let cur = Option.value (Var.Tbl.find_opt t.pred e.dst) ~default:[] in
  Var.Tbl.replace t.pred e.dst ({ e with dst = src } :: cur)

let register_sym t (v : Var.t) = Hashtbl.replace t.sym2var (Var.symbol v) v

let build (f : Func.t) (pta : Pta.t) : t =
  let t =
    {
      func = f;
      pta;
      cdg = Cdg.compute f;
      succ = Var.Tbl.create 64;
      pred = Var.Tbl.create 64;
      all_uses = [];
      use_tbl = Var.Tbl.create 64;
      def_tbl = Func.def_table f;
      block_of = Func.block_of_stmt f;
      sym2var = Hashtbl.create 64;
      dd_memo = Var.Tbl.create 64;
      cd_block_memo = Hashtbl.create 16;
      n_control_edges = 0;
      lock = Mutex.create ();
    }
  in
  List.iter (register_sym t) f.Func.params;
  List.iter (fun (i : Pta.incoming) -> register_sym t i.Pta.ivar) pta.Pta.incomings;
  let uses = ref [] in
  let add_use u = uses := u :: !uses in
  let copy_of_operand dstv cond = function
    | Stmt.Ovar u -> add_edge t u { dst = dstv; cond; kind = Copy }
    | _ -> ()
  in
  let operand_edge dstv = function
    | Stmt.Ovar u -> add_edge t u { dst = dstv; cond = E.tru; kind = Operand }
    | _ -> ()
  in
  Func.iter_stmts f (fun _blk s ->
      List.iter (register_sym t) (Stmt.def s);
      List.iter (register_sym t) (Stmt.uses s);
      match s.Stmt.kind with
      | Stmt.Assign (v, o) -> copy_of_operand v E.tru o
      | Stmt.Phi (v, args) ->
        List.iter
          (fun (a : Stmt.phi_arg) ->
            let gate = Option.value a.Stmt.gate ~default:E.tru in
            copy_of_operand v gate a.Stmt.src)
          args
      | Stmt.Binop (v, _, a, b) ->
        operand_edge v a;
        operand_edge v b
      | Stmt.Unop (v, _, a) -> operand_edge v a
      | Stmt.Load (v, base, k) ->
        (* Conduit loads (Aux actuals at call sites, Aux returns at the
           exit) are synthetic bookkeeping, not program dereferences. *)
        let is_conduit =
          match v.Var.kind with
          | Var.Aux_actual _ | Var.Aux_return _ -> true
          | _ -> false
        in
        (match base with
        | Stmt.Ovar p when not is_conduit ->
          add_use { uvar = p; sid = s.Stmt.sid; ukind = Deref k }
        | _ -> ());
        let entries =
          Option.value (Hashtbl.find_opt pta.Pta.load_res s.Stmt.sid) ~default:[]
        in
        List.iter (fun (e : Pta.entry) -> copy_of_operand v e.Pta.cond e.Pta.value) entries
      | Stmt.Store (base, k, value) -> (
        (* Conduit stores (entry seeds, call-site receivers) likewise. *)
        let is_conduit =
          match value with
          | Stmt.Ovar u -> (
            match u.Var.kind with
            | Var.Aux_formal _ | Var.Aux_receiver _ -> true
            | _ -> false)
          | _ -> false
        in
        match base with
        | Stmt.Ovar p when not is_conduit ->
          add_use { uvar = p; sid = s.Stmt.sid; ukind = Deref k }
        | _ -> ())
      | Stmt.Alloc _ -> ()
      | Stmt.Call c ->
        List.iteri
          (fun i arg ->
            match arg with
            | Stmt.Ovar u ->
              add_use
                {
                  uvar = u;
                  sid = s.Stmt.sid;
                  ukind = Call_arg { callee = c.Stmt.callee; arg_index = i };
                }
            | _ -> ())
          c.Stmt.args
      | Stmt.Return ops ->
        List.iteri
          (fun i op ->
            match op with
            | Stmt.Ovar u -> add_use { uvar = u; sid = s.Stmt.sid; ukind = Ret_op i }
            | _ -> ())
          ops);
  (* Count control-dependence edges for the size metrics. *)
  Func.iter_blocks f (fun blk ->
      t.n_control_edges <-
        t.n_control_edges
        + (List.length (Cdg.deps_of_block t.cdg blk.Func.bid)
          * List.length blk.Func.stmts));
  let t = { t with all_uses = List.rev !uses } in
  List.iter
    (fun u ->
      let cur = Option.value (Var.Tbl.find_opt t.use_tbl u.uvar) ~default:[] in
      Var.Tbl.replace t.use_tbl u.uvar (u :: cur))
    t.all_uses;
  t

(* Deterministically discard part of the graph (fault injection): keep a
   [keep] fraction of every vertex's out-edges and of the use list, rebuild
   the predecessor table from what survives, and start with fresh memo
   tables.  Losing edges only removes value-flow paths, so a truncated SEG
   yields fewer reports, never spurious ones. *)
let truncate t ~keep =
  let keep = Float.max 0.0 (Float.min 1.0 keep) in
  let keep_n n = int_of_float (ceil (keep *. float_of_int n)) in
  let prefix l = List.filteri (fun i _ -> i < keep_n (List.length l)) l in
  let succ = Var.Tbl.create 64 in
  let pred = Var.Tbl.create 64 in
  Var.Tbl.iter
    (fun src es ->
      let es = prefix es in
      if es <> [] then begin
        Var.Tbl.replace succ src es;
        List.iter
          (fun e ->
            let cur = Option.value (Var.Tbl.find_opt pred e.dst) ~default:[] in
            Var.Tbl.replace pred e.dst ({ e with dst = src } :: cur))
          es
      end)
    t.succ;
  let all_uses = prefix t.all_uses in
  let use_tbl = Var.Tbl.create 64 in
  List.iter
    (fun u ->
      let cur = Option.value (Var.Tbl.find_opt use_tbl u.uvar) ~default:[] in
      Var.Tbl.replace use_tbl u.uvar (u :: cur))
    all_uses;
  {
    t with
    succ;
    pred;
    all_uses;
    use_tbl;
    dd_memo = Var.Tbl.create 64;
    cd_block_memo = Hashtbl.create 16;
    lock = Mutex.create ();
  }

(* Reassemble a SEG from stored parts (the artifact store's decode
   path).  Adjacency lists and the use list carry the graph identity
   and are taken verbatim — per-variable edge order is exactly what
   [build] produced, which the DFS traversal order depends on.  The
   purely derived members (CDG, def table, block map, symbol
   registry, memo tables) are recomputed from the resident IR the same
   way [build] computes them. *)
let of_parts ~func:(f : Func.t) ~(pta : Pta.t) ~succs ~preds ~uses
    ~n_control_edges : t =
  let t =
    {
      func = f;
      pta;
      cdg = Cdg.compute f;
      succ = Var.Tbl.create 64;
      pred = Var.Tbl.create 64;
      all_uses = uses;
      use_tbl = Var.Tbl.create 64;
      def_tbl = Func.def_table f;
      block_of = Func.block_of_stmt f;
      sym2var = Hashtbl.create 64;
      dd_memo = Var.Tbl.create 64;
      cd_block_memo = Hashtbl.create 16;
      n_control_edges;
      lock = Mutex.create ();
    }
  in
  List.iter (register_sym t) f.Func.params;
  List.iter (fun (i : Pta.incoming) -> register_sym t i.Pta.ivar) pta.Pta.incomings;
  Func.iter_stmts f (fun _blk s ->
      List.iter (register_sym t) (Stmt.def s);
      List.iter (register_sym t) (Stmt.uses s));
  List.iter (fun (src, es) -> Var.Tbl.replace t.succ src es) succs;
  List.iter (fun (dst, es) -> Var.Tbl.replace t.pred dst es) preds;
  List.iter
    (fun u ->
      let cur = Option.value (Var.Tbl.find_opt t.use_tbl u.uvar) ~default:[] in
      Var.Tbl.replace t.use_tbl u.uvar (u :: cur))
    t.all_uses;
  t

let fold_succs t ~init ~f = Var.Tbl.fold (fun v es acc -> f acc v es) t.succ init
let fold_preds t ~init ~f = Var.Tbl.fold (fun v es acc -> f acc v es) t.pred init
let n_control_edges t = t.n_control_edges

let succs t v = Option.value (Var.Tbl.find_opt t.succ v) ~default:[]
let preds t v = Option.value (Var.Tbl.find_opt t.pred v) ~default:[]
let uses t = t.all_uses
let uses_of t v = Option.value (Var.Tbl.find_opt t.use_tbl v) ~default:[]
let def_of t v = Var.Tbl.find_opt t.def_tbl v
let var_of_symbol t s = Hashtbl.find_opt t.sym2var s

(* --- DD and CD queries (§3.2.2) --- *)

let rec dd t (v : Var.t) : cres =
  match Var.Tbl.find_opt t.dd_memo v with
  | Some r -> r
  | None ->
    (* Break cycles defensively (SSA over a DAG has none, but a malformed
       function should not hang the analysis). *)
    Var.Tbl.replace t.dd_memo v true_res;
    let r = dd_uncached t v in
    Var.Tbl.replace t.dd_memo v r;
    r

and dd_uncached t (v : Var.t) : cres =
  if Var.is_interface v then { true_res with params = Var.Set.singleton v }
  else
    match Var.Tbl.find_opt t.def_tbl v with
    | None -> true_res (* incoming / undefined: free *)
    | Some s -> (
      let vterm = Var.term v in
      match s.Stmt.kind with
      | Stmt.Assign (_, o) ->
        with_f (dd_operand t o) (E.eq vterm (Stmt.operand_term o))
      | Stmt.Binop (_, op, a, b) ->
        let expr = Ops.apply_binop op (Stmt.operand_term a) (Stmt.operand_term b) in
        with_f
          (merge_res (dd_operand t a) (dd_operand t b))
          (if Var.symbol v |> Sym.sort = Sym.Bool then
             E.and_ (E.implies vterm expr) (E.implies expr vterm)
           else E.eq vterm expr)
      | Stmt.Unop (_, op, a) ->
        let expr = Ops.apply_unop op (Stmt.operand_term a) in
        with_f (dd_operand t a)
          (if Var.symbol v |> Sym.sort = Sym.Bool then
             E.and_ (E.implies vterm expr) (E.implies expr vterm)
           else E.eq vterm expr)
      | Stmt.Phi (_, args) ->
        List.fold_left
          (fun acc (a : Stmt.phi_arg) ->
            let gate = Option.value a.Stmt.gate ~default:E.tru in
            let acc = with_f acc (E.implies gate (E.eq vterm (Stmt.operand_term a.Stmt.src))) in
            let acc = merge_res acc (dd_formula_vars t gate) in
            merge_res acc (dd_operand t a.Stmt.src))
          true_res args
      | Stmt.Load (_, _, _) ->
        let entries =
          Option.value (Hashtbl.find_opt t.pta.Pta.load_res s.Stmt.sid) ~default:[]
        in
        List.fold_left
          (fun acc (e : Pta.entry) ->
            let acc =
              with_f acc
                (E.implies e.Pta.cond (E.eq vterm (Stmt.operand_term e.Pta.value)))
            in
            let acc = merge_res acc (dd_formula_vars t e.Pta.cond) in
            merge_res acc (dd_operand t e.Pta.value))
          true_res entries
      | Stmt.Alloc _ ->
        {
          true_res with
          f = E.eq vterm (E.int (alloc_address t.func.Func.fname s.Stmt.sid));
        }
      | Stmt.Call c ->
        let ret_index =
          let rec idx i = function
            | [] -> -1
            | r :: rest -> if Var.equal r v then i else idx (i + 1) rest
          in
          idx 0 c.Stmt.recvs
        in
        {
          true_res with
          recvs =
            [
              {
                rvar = v;
                call_sid = s.Stmt.sid;
                callee = c.Stmt.callee;
                ret_index;
                args = c.Stmt.args;
              };
            ];
        }
      | Stmt.Store _ | Stmt.Return _ -> true_res)

and dd_operand t = function
  | Stmt.Ovar u -> dd t u
  | Stmt.Oint _ | Stmt.Obool _ | Stmt.Onull -> true_res

and dd_formula_vars t (e : E.t) : cres =
  List.fold_left
    (fun acc sym ->
      match var_of_symbol t sym with
      | Some v -> merge_res acc (dd t v)
      | None -> acc)
    true_res (E.vars e)

let dd_expr t e = dd_formula_vars t e

let rec cd_block t (b : int) : cres =
  match Hashtbl.find_opt t.cd_block_memo b with
  | Some r -> r
  | None ->
    Hashtbl.replace t.cd_block_memo b true_res;
    let deps = Cdg.deps_of_block t.cdg b in
    let r =
      List.fold_left
        (fun acc (d : Cdg.dep) ->
          let cterm = Stmt.operand_term d.Cdg.cond in
          let lit = if d.Cdg.polarity then cterm else E.not_ cterm in
          let acc = with_f acc lit in
          let acc = merge_res acc (dd_formula_vars t cterm) in
          merge_res acc (cd_block t d.Cdg.branch_block))
        true_res deps
    in
    Hashtbl.replace t.cd_block_memo b r;
    r

let cd_stmt t sid =
  match Hashtbl.find_opt t.block_of sid with
  | Some b -> cd_block t b
  | None -> true_res

(* Like cd_block, but separating the branch literals from the defining
   facts of the branch variables. *)
let rec cd_block_split t (b : int) : E.t * cres =
  let deps = Cdg.deps_of_block t.cdg b in
  List.fold_left
    (fun (lits, facts) (d : Cdg.dep) ->
      let cterm = Stmt.operand_term d.Cdg.cond in
      let lit = if d.Cdg.polarity then cterm else E.not_ cterm in
      let facts = merge_res facts (dd_formula_vars t cterm) in
      let lits', facts' = cd_block_split t d.Cdg.branch_block in
      (E.and_ (E.and_ lits lit) lits', merge_res facts facts'))
    (E.tru, true_res) deps

let cd_stmt_split t sid =
  match Hashtbl.find_opt t.block_of sid with
  | Some b -> cd_block_split t b
  | None -> (E.tru, true_res)

(* Locked public entry points (shadow the unlocked definitions above):
   one lock per seg, taken once per query, recursion runs lock-held. *)
let dd t v = Mutex.protect t.lock (fun () -> dd t v)
let dd_expr t e = Mutex.protect t.lock (fun () -> dd_expr t e)
let cd_stmt t sid = Mutex.protect t.lock (fun () -> cd_stmt t sid)
let cd_stmt_split t sid = Mutex.protect t.lock (fun () -> cd_stmt_split t sid)

let n_vertices t =
  (* variable vertices + use vertices (the v@s occurrences) *)
  Var.Tbl.length t.succ + List.length t.all_uses
  + List.length t.func.Func.params

let n_edges t =
  Var.Tbl.fold (fun _ es acc -> acc + List.length es) t.succ 0
  + t.n_control_edges

let dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "digraph seg_%s {\n  rankdir=BT;\n  node [shape=ellipse];\n"
       t.func.Func.fname);
  Var.Tbl.iter
    (fun (src : Var.t) es ->
      List.iter
        (fun e ->
          let label = if E.is_true e.cond then "" else E.to_string e.cond in
          Buffer.add_string buf
            (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%s\"%s];\n" src.Var.name
               e.dst.Var.name
               (Pinpoint_util.Pp.quote label)
               (match e.kind with Operand -> ", style=dashed" | Copy -> "")))
        es)
    t.succ;
  List.iter
    (fun u ->
      let d =
        match u.ukind with
        | Deref k -> Printf.sprintf "deref%d@s%d" k u.sid
        | Call_arg { callee; arg_index } ->
          Printf.sprintf "%s.arg%d@s%d" callee arg_index u.sid
        | Ret_op i -> Printf.sprintf "ret%d@s%d" i u.sid
      in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\" [style=dotted];\n" u.uvar.Var.name d))
    t.all_uses;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
