(** Hash-consed symbolic expressions.

    These are the formulas that label SEG edges and make up path conditions.
    Hash-consing gives O(1) structural equality (pointer/id comparison) and
    maximal sharing, which keeps the "compact encoding" property of the SEG
    (paper §3.2): a branch condition appearing in many labels is stored
    once.

    Smart constructors perform light normalisation: constant folding,
    [true]/[false] absorption, double-negation elimination, and pushing
    negation into comparison atoms (so ¬(a < b) becomes b ≤ a).  This keeps
    the atom space canonical for both the linear-time solver and the full
    solver. *)

type t = private {
  id : int;
      (** Intern id: allocation-ordered, so schedule-dependent under
          parallelism.  Valid for equality, hashing and memo keys only —
          formula structure must never be derived from it. *)
  skey : int;
      (** Structural rank (hash of kinds, constants, symbol names and
          children's ranks): schedule-independent; orders commutative
          operands canonically. *)
  node : node;
}

and node =
  | True
  | False
  | Int of int                 (** Integer literal. *)
  | Var of Symbol.t            (** Variable of either sort. *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Eq of t * t
  | Ne of t * t
  | Lt of t * t                (** strictly-less over integers *)
  | Le of t * t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Neg of t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** {1 Constructors} *)

val tru : t
val fls : t
val int : int -> t
val var : Symbol.t -> t
val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val conj : t list -> t
val disj : t list -> t

val conj_balanced : t list -> t
(** Like {!conj}, but deduplicates the operands and folds them as a
    balanced tree after sorting by structural rank ([skey], ties keeping
    list order) — so any order of the same conjunct set interns the same
    node, restoring the sharing a left fold defeats.  Equisatisfiable with
    [conj] (associativity/commutativity of ∧); preferred for
    engine-assembled path conditions. *)

val disj_balanced : t list -> t
(** Dual of {!conj_balanced}. *)

val implies : t -> t -> t
val eq : t -> t -> t
val ne : t -> t -> t
val lt : t -> t -> t
val le : t -> t -> t
val gt : t -> t -> t
val ge : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val bool : bool -> t

val of_node : node -> t
(** Intern a raw node whose children are already interned expressions.
    Returns the canonical (hash-consed) expression for that node —
    physically equal to any previously built identical expression.  For
    deserializers rebuilding stored formulas bottom-up; does {e not}
    re-canonicalise commutative operand order, so only feed it nodes
    that were produced by the smart constructors in the first place. *)

val is_true : t -> bool
val is_false : t -> bool

val sort_of : t -> Symbol.sort
(** The sort of a well-sorted expression (comparisons and connectives are
    Bool; arithmetic and literals are Int; variables carry their own). *)

(** {1 Queries} *)

val atoms : t -> t list
(** The atomic boolean constraints of a formula, in first-occurrence order:
    boolean variables and comparison nodes, with negations stripped.  (See
    the paper's footnote 3: an atomic constraint is a bool-typed expression
    without logical operators.) *)

val vars : t -> Symbol.t list
(** All variables occurring in the expression, deduplicated. *)

val size : t -> int
(** Number of distinct subterms (DAG size). *)

val subst : (Symbol.t -> t option) -> t -> t
(** Capture-free substitution of variables. *)

(** {1 Evaluation} (used by tests and the CSA-like baseline) *)

type value = VBool of bool | VInt of int

val eval : (Symbol.t -> value) -> t -> value
(** Evaluate under a total environment.  Raises [Invalid_argument] on sort
    errors. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val n_created : unit -> int
(** Number of distinct hash-consed nodes ever created (a stats counter for
    the bench harness). *)
