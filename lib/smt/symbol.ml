type t = int
type sort = Bool | Int

(* The registry is global and written from every domain (SEG build forces
   variable symbols, the engine's clone frames mint fresh ones), so
   allocation is serialised by a mutex.  Readers don't take it: the arrays
   are published through Atomic references, and a slot is written before
   [next] admits its id — a reader holding a valid id always sees a fully
   initialised slot through the same release/acquire pair. *)
type registry = { names : string array; sorts : sort array }

let reg = Atomic.make { names = Array.make 1024 ""; sorts = Array.make 1024 Bool }
let next = ref 0
let lock = Mutex.create ()

let grow n =
  let r = Atomic.get reg in
  if n > Array.length r.names then begin
    let cap = max n (2 * Array.length r.names) in
    let names' = Array.make cap "" in
    Array.blit r.names 0 names' 0 !next;
    let sorts' = Array.make cap Bool in
    Array.blit r.sorts 0 sorts' 0 !next;
    Atomic.set reg { names = names'; sorts = sorts' }
  end

let fresh nm so =
  Mutex.protect lock (fun () ->
      grow (!next + 1);
      let r = Atomic.get reg in
      let id = !next in
      r.names.(id) <- nm;
      r.sorts.(id) <- so;
      incr next;
      id)

let name id = (Atomic.get reg).names.(id)
let sort id = (Atomic.get reg).sorts.(id)
let count () = !next
let pp ppf id = Format.fprintf ppf "%s#%d" (name id) id

let pp_sort ppf = function
  | Bool -> Format.pp_print_string ppf "bool"
  | Int -> Format.pp_print_string ppf "int"
