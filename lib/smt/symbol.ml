type t = int
type sort = Bool | Int

(* Dynamic arrays for the registry; grow by doubling. *)
let names = ref (Array.make 1024 "")
let sorts = ref (Array.make 1024 Bool)
let next = ref 0

let grow n =
  if n > Array.length !names then begin
    let cap = max n (2 * Array.length !names) in
    let names' = Array.make cap "" in
    Array.blit !names 0 names' 0 !next;
    names := names';
    let sorts' = Array.make cap Bool in
    Array.blit !sorts 0 sorts' 0 !next;
    sorts := sorts'
  end

let fresh nm so =
  grow (!next + 1);
  let id = !next in
  !names.(id) <- nm;
  !sorts.(id) <- so;
  incr next;
  id

let name id = !names.(id)
let sort id = !sorts.(id)
let count () = !next
let pp ppf id = Format.fprintf ppf "%s#%d" (name id) id

let pp_sort ppf = function
  | Bool -> Format.pp_print_string ppf "bool"
  | Int -> Format.pp_print_string ppf "int"
