(* Shared SMT verdict cache (DESIGN.md §4.10, §4.13).

   Keyed by the hash-consed expression id: within a process two structurally
   identical formulas are the same node, so physical identity is structural
   identity.  Satisfiability is a pure function of formula structure, which
   makes a hit exchangeable with recomputation — reports stay identical at
   every [--jobs] level no matter which domain populated an entry first.

   Only definitive full-strength verdicts are stored: [Sat] (with its
   model, so hits reproduce trigger hints) and [Unsat].  [Unknown] is a
   budget artefact and degraded-rung verdicts may be weaker than the full
   solver's answer, so neither is ever cached (the caller enforces this;
   the cache just stores what it is given).

   Sharding bounds contention: entries hash to one of [n_shards] tables,
   each behind its own mutex, so concurrent domains only collide when they
   touch the same shard.

   Bounding: batch runs leave the cache unbounded (historical behaviour),
   but a resident server process caps it with {!set_capacity}.  Each shard
   then keeps its entries in a fixed-size ring swept by a clock hand:
   a hit sets the slot's reference bit, and an insert into a full shard
   advances the hand, clearing reference bits, until it finds a cold slot
   to evict — second-chance LRU with O(1) amortised eviction and no
   per-hit allocation.  Eviction only ever forgets a verdict (the next
   identical query recomputes it), so caps never change reports. *)

module Obs = Pinpoint_obs.Obs

type entry = Cached_sat of (Expr.t * bool) list | Cached_unsat

let n_shards = 16

type slot = {
  key : int;  (** hash-cons id; -1 = empty *)
  entry : entry;
  mutable referenced : bool;
}

type shard = {
  lock : Mutex.t;
  tbl : (int, slot) Hashtbl.t;
  (* Ring of live slots, only used when a capacity is set.  [ring.(i)] is
     [None] for a not-yet-used position; evicted positions are reused in
     place so [tbl] and [ring] always describe the same slot set.  [free]
     holds the unused positions, so the clock only ever evicts when the
     shard really is full. *)
  mutable ring : slot option array;
  mutable free : int list;
  mutable hand : int;
  mutable cap : int;  (** per-shard capacity; [max_int] = unbounded *)
}

let shards =
  Array.init n_shards (fun _ ->
      {
        lock = Mutex.create ();
        tbl = Hashtbl.create 256;
        ring = [||];
        free = [];
        hand = 0;
        cap = max_int;
      })

(* Off by default: direct solver clients (unit tests, baselines) keep their
   historical per-query behaviour.  The engine enables it for the duration
   of a run (config [use_qcache], CLI [--no-qcache]). *)
let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* Lifetime counters (process-wide): probes, inserts and clock evictions.
   These feed the server's status report and the [qcache.*] observability
   counters/gauges. *)
let n_evictions = Atomic.make 0
let n_inserts = Atomic.make 0
let n_probes = Atomic.make 0

let shard_of (e : Expr.t) = shards.((e.Expr.id land max_int) mod n_shards)

(* Near-miss accounting (metrics-level only).  The cache key is the
   hash-cons id, so two formulas over the same comparison atoms but with
   different boolean structure never hit each other.  Groups of probed
   formulas sharing an atom multiset but not an id are "near misses":
   they bound what a structure-normalising cache key could recover.
   Keyed by a hash of the sorted atom-id multiset, so distinct multisets
   can in principle collide — fine for a diagnostic. *)
type nm = { nm_atoms : int; mutable nm_ids : int list; mutable nm_probes : int }

let nm_lock = Mutex.create ()
let nm_tbl : (int, nm) Hashtbl.t = Hashtbl.create 256
let nm_max_groups = 1 lsl 14
let nm_max_ids = 16

let atom_signature (e : Expr.t) =
  let ids =
    List.sort compare (List.map (fun (a : Expr.t) -> a.Expr.id) (Expr.atoms e))
  in
  let h = List.fold_left (fun h i -> (h * 1000003) lxor i) 0x9e3779b9 ids in
  ((h land max_int), List.length ids)

let note_probe (e : Expr.t) =
  let sg, n_atoms = atom_signature e in
  Mutex.protect nm_lock (fun () ->
      match Hashtbl.find_opt nm_tbl sg with
      | Some r ->
        r.nm_probes <- r.nm_probes + 1;
        (* Any repeat probe of a populated group is a near miss: the atom
           multiset was seen before, whether under this id (a plain miss
           that a structural key would not improve) or a different one.
           Only the distinct-id case counts — that is the reuse a
           coarser-grained key (or the {!Corecache}) could recover. *)
        if not (List.mem e.Expr.id r.nm_ids) then begin
          Obs.add (Obs.counter "qcache.n_near_miss") 1;
          if List.length r.nm_ids < nm_max_ids then
            r.nm_ids <- e.Expr.id :: r.nm_ids
        end
      | None ->
        if Hashtbl.length nm_tbl < nm_max_groups then
          Hashtbl.add nm_tbl sg
            { nm_atoms = n_atoms; nm_ids = [ e.Expr.id ]; nm_probes = 1 })

type near_miss = {
  signature : int;
  atoms : int;
  ids : int list;  (** distinct formula ids probed, ascending (capped) *)
  probes : int;
}

let near_misses ?(top_k = 10) () =
  let groups =
    Mutex.protect nm_lock (fun () ->
        Hashtbl.fold
          (fun sg r acc ->
            if List.length r.nm_ids >= 2 then
              {
                signature = sg;
                atoms = r.nm_atoms;
                ids = List.sort compare r.nm_ids;
                probes = r.nm_probes;
              }
              :: acc
            else acc)
          nm_tbl [])
  in
  List.sort
    (fun a b ->
      match compare b.probes a.probes with
      | 0 -> compare a.signature b.signature
      | c -> c)
    groups
  |> List.filteri (fun i _ -> i < top_k)

let find (e : Expr.t) : entry option =
  if not (enabled ()) then None
  else begin
    Atomic.incr n_probes;
    if Obs.metrics_on () then begin
      Obs.add (Obs.counter "qcache.n_probe") 1;
      note_probe e
    end;
    let s = shard_of e in
    Mutex.protect s.lock (fun () ->
        match Hashtbl.find_opt s.tbl e.Expr.id with
        | Some slot ->
          slot.referenced <- true;
          Some slot.entry
        | None -> None)
  end

(* Find the ring position to (re)use for a new slot: a free position if one
   exists, otherwise sweep the clock hand over reference bits until a cold
   slot turns up and evict it.  Called with the shard lock held and
   [s.cap < max_int]. *)
let evict_position_locked s =
  match s.free with
  | i :: rest ->
    s.free <- rest;
    i
  | [] ->
    let n = Array.length s.ring in
    let rec sweep budget =
      let i = s.hand in
      s.hand <- (s.hand + 1) mod n;
      match s.ring.(i) with
      | None -> i (* unreachable with an empty free list; harmless *)
      | Some slot ->
        if slot.referenced && budget > 0 then begin
          slot.referenced <- false;
          sweep (budget - 1)
        end
        else begin
          Hashtbl.remove s.tbl slot.key;
          Atomic.incr n_evictions;
          i
        end
    in
    (* Budget 2n: after one full sweep every bit is clear, the second sweep
       must land — keeps the loop obviously terminating. *)
    sweep (2 * n)

let add (e : Expr.t) (entry : entry) : unit =
  if enabled () then begin
    let s = shard_of e in
    Mutex.protect s.lock (fun () ->
        match Hashtbl.find_opt s.tbl e.Expr.id with
        | Some _ ->
          (* verdicts are pure: a racing double-computation stores the same
             value, so keep the existing slot (and its ring position) *)
          ()
        | None ->
          Atomic.incr n_inserts;
          if Obs.metrics_on () then Obs.add (Obs.counter "qcache.n_insert") 1;
          let slot = { key = e.Expr.id; entry; referenced = false } in
          if s.cap = max_int then Hashtbl.replace s.tbl e.Expr.id slot
          else begin
            let pos = evict_position_locked s in
            s.ring.(pos) <- Some slot;
            Hashtbl.replace s.tbl e.Expr.id slot
          end)
  end

let iota n = List.init n (fun i -> i)

let clear () =
  Array.iter
    (fun s ->
      Mutex.protect s.lock (fun () ->
          Hashtbl.reset s.tbl;
          Array.fill s.ring 0 (Array.length s.ring) None;
          s.free <- iota (Array.length s.ring);
          s.hand <- 0))
    shards

let set_capacity cap =
  match cap with
  | None ->
    Array.iter
      (fun s ->
        Mutex.protect s.lock (fun () ->
            s.cap <- max_int;
            s.ring <- [||];
            s.free <- [];
            s.hand <- 0))
      shards
  | Some c ->
    let per_shard = max 1 ((max 1 c + n_shards - 1) / n_shards) in
    Array.iter
      (fun s ->
        Mutex.protect s.lock (fun () ->
            (* Resizing drops the shard's contents: the server sets the cap
               once at startup, and a dropped verdict is only a future
               recomputation. *)
            Hashtbl.reset s.tbl;
            s.cap <- per_shard;
            s.ring <- Array.make per_shard None;
            s.free <- iota per_shard;
            s.hand <- 0))
      shards

let capacity () =
  let s = shards.(0) in
  let per = Mutex.protect s.lock (fun () -> s.cap) in
  if per = max_int then None else Some (per * n_shards)

let length () =
  Array.fold_left
    (fun acc s -> acc + Mutex.protect s.lock (fun () -> Hashtbl.length s.tbl))
    0 shards

type stats = {
  entries : int;
  cap : int option;
  evictions : int;
  inserts : int;
  probes : int;
}

let stats () =
  {
    entries = length ();
    cap = capacity ();
    evictions = Atomic.get n_evictions;
    inserts = Atomic.get n_inserts;
    probes = Atomic.get n_probes;
  }

(* Contribute the near-miss table to [--metrics-json] (top groups of
   structurally distinct formulas sharing an atom multiset). *)
let () =
  Obs.register_json_section "qcache_near_misses" (fun () ->
      let row n =
        Printf.sprintf
          "{\"signature\": %d, \"atoms\": %d, \"distinct_formulas\": %d, \
           \"probes\": %d, \"ids\": [%s]}"
          n.signature n.atoms (List.length n.ids) n.probes
          (String.concat ", " (List.map string_of_int n.ids))
      in
      "[" ^ String.concat ", " (List.map row (near_misses ~top_k:10 ())) ^ "]")
