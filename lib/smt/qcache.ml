(* Shared SMT verdict cache (DESIGN.md §4.10).

   Keyed by the hash-consed expression id: within a process two structurally
   identical formulas are the same node, so physical identity is structural
   identity.  Satisfiability is a pure function of formula structure, which
   makes a hit exchangeable with recomputation — reports stay identical at
   every [--jobs] level no matter which domain populated an entry first.

   Only definitive full-strength verdicts are stored: [Sat] (with its
   model, so hits reproduce trigger hints) and [Unsat].  [Unknown] is a
   budget artefact and degraded-rung verdicts may be weaker than the full
   solver's answer, so neither is ever cached (the caller enforces this;
   the cache just stores what it is given).

   Sharding bounds contention: entries hash to one of [n_shards] tables,
   each behind its own mutex, so concurrent domains only collide when they
   touch the same shard. *)

type entry = Cached_sat of (Expr.t * bool) list | Cached_unsat

let n_shards = 16

type shard = { lock : Mutex.t; tbl : (int, entry) Hashtbl.t }

let shards =
  Array.init n_shards (fun _ ->
      { lock = Mutex.create (); tbl = Hashtbl.create 256 })

(* Off by default: direct solver clients (unit tests, baselines) keep their
   historical per-query behaviour.  The engine enables it for the duration
   of a run (config [use_qcache], CLI [--no-qcache]). *)
let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let shard_of (e : Expr.t) = shards.((e.Expr.id land max_int) mod n_shards)

let find (e : Expr.t) : entry option =
  if not (enabled ()) then None
  else
    let s = shard_of e in
    Mutex.protect s.lock (fun () -> Hashtbl.find_opt s.tbl e.Expr.id)

let add (e : Expr.t) (entry : entry) : unit =
  if enabled () then begin
    let s = shard_of e in
    (* last write wins: verdicts are pure, so a racing double-computation
       stores the same value either way *)
    Mutex.protect s.lock (fun () -> Hashtbl.replace s.tbl e.Expr.id entry)
  end

let clear () =
  Array.iter
    (fun s -> Mutex.protect s.lock (fun () -> Hashtbl.reset s.tbl))
    shards

let length () =
  Array.fold_left
    (fun acc s -> acc + Mutex.protect s.lock (fun () -> Hashtbl.length s.tbl))
    0 shards
