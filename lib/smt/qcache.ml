(* Shared SMT verdict cache (DESIGN.md §4.10, §4.13).

   Keyed by the hash-consed expression id: within a process two structurally
   identical formulas are the same node, so physical identity is structural
   identity.  Satisfiability is a pure function of formula structure, which
   makes a hit exchangeable with recomputation — reports stay identical at
   every [--jobs] level no matter which domain populated an entry first.

   Only definitive full-strength verdicts are stored: [Sat] (with its
   model, so hits reproduce trigger hints) and [Unsat].  [Unknown] is a
   budget artefact and degraded-rung verdicts may be weaker than the full
   solver's answer, so neither is ever cached (the caller enforces this;
   the cache just stores what it is given).

   Sharding bounds contention: entries hash to one of [n_shards] tables,
   each behind its own mutex, so concurrent domains only collide when they
   touch the same shard.

   Bounding: batch runs leave the cache unbounded (historical behaviour),
   but a resident server process caps it with {!set_capacity}.  Each shard
   then keeps its entries in a fixed-size ring swept by a clock hand:
   a hit sets the slot's reference bit, and an insert into a full shard
   advances the hand, clearing reference bits, until it finds a cold slot
   to evict — second-chance LRU with O(1) amortised eviction and no
   per-hit allocation.  Eviction only ever forgets a verdict (the next
   identical query recomputes it), so caps never change reports. *)

type entry = Cached_sat of (Expr.t * bool) list | Cached_unsat

let n_shards = 16

type slot = {
  key : int;  (** hash-cons id; -1 = empty *)
  entry : entry;
  mutable referenced : bool;
}

type shard = {
  lock : Mutex.t;
  tbl : (int, slot) Hashtbl.t;
  (* Ring of live slots, only used when a capacity is set.  [ring.(i)] is
     [None] for a not-yet-used position; evicted positions are reused in
     place so [tbl] and [ring] always describe the same slot set.  [free]
     holds the unused positions, so the clock only ever evicts when the
     shard really is full. *)
  mutable ring : slot option array;
  mutable free : int list;
  mutable hand : int;
  mutable cap : int;  (** per-shard capacity; [max_int] = unbounded *)
}

let shards =
  Array.init n_shards (fun _ ->
      {
        lock = Mutex.create ();
        tbl = Hashtbl.create 256;
        ring = [||];
        free = [];
        hand = 0;
        cap = max_int;
      })

(* Off by default: direct solver clients (unit tests, baselines) keep their
   historical per-query behaviour.  The engine enables it for the duration
   of a run (config [use_qcache], CLI [--no-qcache]). *)
let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* Lifetime counters (process-wide): inserts and clock evictions.  These
   feed the server's status report and the [qcache.*] observability
   gauges. *)
let n_evictions = Atomic.make 0
let n_inserts = Atomic.make 0

let shard_of (e : Expr.t) = shards.((e.Expr.id land max_int) mod n_shards)

let find (e : Expr.t) : entry option =
  if not (enabled ()) then None
  else
    let s = shard_of e in
    Mutex.protect s.lock (fun () ->
        match Hashtbl.find_opt s.tbl e.Expr.id with
        | Some slot ->
          slot.referenced <- true;
          Some slot.entry
        | None -> None)

(* Find the ring position to (re)use for a new slot: a free position if one
   exists, otherwise sweep the clock hand over reference bits until a cold
   slot turns up and evict it.  Called with the shard lock held and
   [s.cap < max_int]. *)
let evict_position_locked s =
  match s.free with
  | i :: rest ->
    s.free <- rest;
    i
  | [] ->
    let n = Array.length s.ring in
    let rec sweep budget =
      let i = s.hand in
      s.hand <- (s.hand + 1) mod n;
      match s.ring.(i) with
      | None -> i (* unreachable with an empty free list; harmless *)
      | Some slot ->
        if slot.referenced && budget > 0 then begin
          slot.referenced <- false;
          sweep (budget - 1)
        end
        else begin
          Hashtbl.remove s.tbl slot.key;
          Atomic.incr n_evictions;
          i
        end
    in
    (* Budget 2n: after one full sweep every bit is clear, the second sweep
       must land — keeps the loop obviously terminating. *)
    sweep (2 * n)

let add (e : Expr.t) (entry : entry) : unit =
  if enabled () then begin
    let s = shard_of e in
    Mutex.protect s.lock (fun () ->
        match Hashtbl.find_opt s.tbl e.Expr.id with
        | Some _ ->
          (* verdicts are pure: a racing double-computation stores the same
             value, so keep the existing slot (and its ring position) *)
          ()
        | None ->
          Atomic.incr n_inserts;
          let slot = { key = e.Expr.id; entry; referenced = false } in
          if s.cap = max_int then Hashtbl.replace s.tbl e.Expr.id slot
          else begin
            let pos = evict_position_locked s in
            s.ring.(pos) <- Some slot;
            Hashtbl.replace s.tbl e.Expr.id slot
          end)
  end

let iota n = List.init n (fun i -> i)

let clear () =
  Array.iter
    (fun s ->
      Mutex.protect s.lock (fun () ->
          Hashtbl.reset s.tbl;
          Array.fill s.ring 0 (Array.length s.ring) None;
          s.free <- iota (Array.length s.ring);
          s.hand <- 0))
    shards

let set_capacity cap =
  match cap with
  | None ->
    Array.iter
      (fun s ->
        Mutex.protect s.lock (fun () ->
            s.cap <- max_int;
            s.ring <- [||];
            s.free <- [];
            s.hand <- 0))
      shards
  | Some c ->
    let per_shard = max 1 ((max 1 c + n_shards - 1) / n_shards) in
    Array.iter
      (fun s ->
        Mutex.protect s.lock (fun () ->
            (* Resizing drops the shard's contents: the server sets the cap
               once at startup, and a dropped verdict is only a future
               recomputation. *)
            Hashtbl.reset s.tbl;
            s.cap <- per_shard;
            s.ring <- Array.make per_shard None;
            s.free <- iota per_shard;
            s.hand <- 0))
      shards

let capacity () =
  let s = shards.(0) in
  let per = Mutex.protect s.lock (fun () -> s.cap) in
  if per = max_int then None else Some (per * n_shards)

let length () =
  Array.fold_left
    (fun acc s -> acc + Mutex.protect s.lock (fun () -> Hashtbl.length s.tbl))
    0 shards

type stats = { entries : int; cap : int option; evictions : int; inserts : int }

let stats () =
  {
    entries = length ();
    cap = capacity ();
    evictions = Atomic.get n_evictions;
    inserts = Atomic.get n_inserts;
  }
