(** Unsat-core subsumption cache (DESIGN.md §4.17).

    Stores the shrunk unsat cores of refuted path conditions as sorted
    sets of top-level-conjunct hash-cons ids.  A later query whose
    conjunct set contains any stored core is Unsat without running the
    full solver — sound because a conjunction containing an unsatisfiable
    subset is unsatisfiable.  Complements {!Qcache}, which only replays
    structurally identical formulas: candidates from the same source
    differ in a sink conjunct or two but share the refuted prefix, and
    this cache recovers exactly those near misses.

    Like {!Qcache}, the cache is process-global but off by default; the
    engine gates it per run (config [use_corecache], CLI
    [--no-core-cache]).  A hit is exchangeable with recomputation, so
    reports are identical at every [--jobs] level and with the cache on
    or off. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val conjuncts : Expr.t -> Expr.t list
(** The top-level conjunct set of a formula's ∧-spine, flattened
    recursively and deduplicated by hash-cons id, in first-occurrence
    order.  This is the granularity cores are stored and probed at. *)

val probe : Expr.t -> bool
(** [probe e] is [true] iff the cache is enabled and [e]'s conjunct set
    contains a stored core — in which case [e] is Unsat. *)

val store : Expr.t list -> unit
(** Store a conjunct set known to be jointly unsatisfiable (a core).  The
    caller (the solver) is responsible for only passing genuinely
    unsatisfiable sets — typically the deletion-shrunk conjuncts of a
    full-rung Unsat verdict.  No-op when disabled or the shard is full. *)

val note_shrink_check : unit -> unit
(** Count one core-shrink sub-check (bumped by the solver's deletion
    loop; surfaces as the [corecache.n_shrink_check] counter). *)

val clear : unit -> unit
val length : unit -> int

type stats = {
  entries : int;
  probes : int;
  hits : int;
  stores : int;
  shrink_checks : int;
}

val stats : unit -> stats
(** Process-lifetime counters (not per-run deltas). *)
