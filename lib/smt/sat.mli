(** A CDCL SAT core over CNF clauses.

    Variables are positive integers; literals are non-zero integers, DIMACS
    style ([v] positive, [-v] negated).  The engine is conflict-driven:
    two-watched-literal propagation over a flat clause arena, 1UIP conflict
    analysis with clause learning and non-chronological backjumping, EVSIDS
    activity decisions with phase saving, Luby restarts and LBD-based
    learned-clause DB reduction.

    The solver is incremental: clauses may be added between [solve] calls
    (learned clauses and saved phases persist), and [solve] accepts
    assumption literals, which the lazy DPLL(T) loop uses to re-run the
    degradation ladder's rungs on the same solver state.

    The pre-CDCL chronological DPLL is kept as {!Sat_ref}; setting
    [PINPOINT_SAT=ref] in the environment (or calling {!set_impl}) routes
    this interface to it for ablations and differential testing. *)

type t

(** Which core backs new instances created by {!create}. *)
type impl = Cdcl | Ref

val impl : unit -> impl
(** Current core selection (initialised from [PINPOINT_SAT]; [ref] or
    [dpll] select the reference core, anything else CDCL). *)

val set_impl : impl -> unit
(** Override the core selection for subsequently created instances (used
    by the [bench smt] ablation; existing instances are unaffected). *)

val impl_name : unit -> string
(** ["cdcl"] or ["ref"]. *)

val create : unit -> t

val new_var : t -> int
(** Allocate the next variable (starting at 1). *)

val ensure_vars : t -> int -> unit
(** Make sure variables up to the given id exist. *)

val add_clause : t -> int list -> unit
(** Add a clause (list of literals).  The empty clause makes the instance
    trivially unsatisfiable.  Adding a clause backtracks the solver to
    decision level 0; learned clauses survive. *)

type result =
  | Sat of bool array
      (** [model.(v)] is the value of variable [v]; index 0 is unused. *)
  | Unsat

type counts = Sat_ref.counts = {
  propagations : int;  (** literals assigned by unit propagation *)
  decisions : int;     (** branching decisions *)
  conflicts : int;     (** conflicts hit (the budget unit) *)
  learned : int;       (** clauses learned by conflict analysis *)
  restarts : int;      (** Luby restarts performed *)
}

val counts : t -> counts
(** Cumulative search-effort counters for this instance; monotonic across
    [solve] calls, so callers read deltas around each call. *)

val default_budget : int
(** Default conflict budget per [solve] call. *)

val solve :
  ?budget:int ->
  ?assumptions:int list ->
  ?deadline:Pinpoint_util.Metrics.deadline ->
  t ->
  result option
(** Solve under the given assumption literals (empty by default).

    [budget] caps the number of {e conflicts} this call may spend
    (default {!default_budget}); [None] means the budget was exhausted
    — the instance stays valid and a later call (possibly with a larger
    budget) resumes with everything learned so far.  Note the semantics
    change from the pre-CDCL core, whose budget counted decisions.

    [Some Unsat] under non-empty assumptions means unsatisfiable {e under
    those assumptions}; the instance itself may still be satisfiable.

    The wall-clock [deadline] is polled cooperatively inside the
    propagation loop; on expiry {!Pinpoint_util.Metrics.Timeout} is
    raised (the degradation ladder in {!Solver} catches it and steps
    down).  The instance remains reusable after a timeout. *)
