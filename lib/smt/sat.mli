(** A small DPLL SAT core over CNF clauses.

    Variables are positive integers; literals are non-zero integers, DIMACS
    style ([v] positive, [-v] negated).  Supports incremental clause
    addition, which the lazy DPLL(T) loop uses for theory blocking
    clauses. *)

type t

val create : unit -> t

val new_var : t -> int
(** Allocate the next variable (starting at 1). *)

val ensure_vars : t -> int -> unit
(** Make sure variables up to the given id exist. *)

val add_clause : t -> int list -> unit
(** Add a clause (list of literals).  The empty clause makes the instance
    trivially unsatisfiable. *)

type result =
  | Sat of bool array
      (** [model.(v)] is the value of variable [v]; index 0 is unused. *)
  | Unsat

val solve :
  ?budget:int -> ?deadline:Pinpoint_util.Metrics.deadline -> t -> result option
(** Solve with a decision budget; [None] means the budget was exhausted.
    The wall-clock [deadline] is polled cooperatively inside the DPLL
    loop; on expiry {!Pinpoint_util.Metrics.Timeout} is raised (the
    degradation ladder in {!Solver} catches it and steps down). *)
