(** Small exact rational arithmetic on native ints (normalised by gcd).

    Good enough for the linear constraints that appear in path conditions,
    whose coefficients are small program constants.  Overflow is not
    checked; the theory solver caps constraint sizes well below any
    realistic overflow. *)

type t = { num : int; den : int }
(** Invariant: [den > 0] and [gcd (abs num) den = 1]. *)

val zero : t
val one : t
val of_int : int -> t
val make : int -> int -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val pp : Format.formatter -> t -> unit
