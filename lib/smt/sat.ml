(* CDCL SAT core.

   A conflict-driven clause-learning solver in the MiniSat lineage:

   - two-watched-literal propagation over a flat [int array] clause arena
     (no per-clause list scans, no allocation on the propagation path);
   - 1UIP conflict analysis producing one learned clause per conflict,
     with non-chronological backjumping to the clause's assertion level;
   - EVSIDS variable activities (bump on resolution, geometric decay)
     driving decisions through an indexed binary max-heap, with phase
     saving (initial phase [true], mirroring the old DPLL's
     try-true-first order);
   - Luby-sequence restarts (base interval 64 conflicts);
   - LBD-scored learned-clause DB reduction, protecting reason ("locked")
     and glue (LBD <= 2) clauses.

   The solver is incremental: clauses may be added between [solve] calls
   (learned clauses and saved phases persist), and [solve] accepts
   assumption literals MiniSat-style, so the lazy DPLL(T) loop and the
   degradation ladder can re-query the same instance instead of
   rebuilding the CNF.

   [budget] counts conflicts (the CDCL-native effort measure); the old
   core counted decisions.  The wall-clock deadline is polled in the
   propagation loop at points where the watch lists are consistent, so a
   Timeout escape leaves the instance reusable.

   The pre-CDCL chronological DPLL survives as {!Sat_ref}; set
   [PINPOINT_SAT=ref] (or call [set_impl Ref]) to route this module's
   interface to it for ablations and differential testing. *)

module Metrics = Pinpoint_util.Metrics

type result = Sat of bool array | Unsat

type counts = Sat_ref.counts = {
  propagations : int;
  decisions : int;
  conflicts : int;
  learned : int;
  restarts : int;
}

(* ------------------------------------------------------------------ *)
(* Implementation selection                                            *)
(* ------------------------------------------------------------------ *)

type impl = Cdcl | Ref

let impl_of_env () =
  match Sys.getenv_opt "PINPOINT_SAT" with
  | Some s -> (
    match String.lowercase_ascii (String.trim s) with
    | "ref" | "dpll" -> Ref
    | _ -> Cdcl)
  | None -> Cdcl

let selected = ref (impl_of_env ())
let impl () = !selected
let set_impl i = selected := i
let impl_name () = match !selected with Cdcl -> "cdcl" | Ref -> "ref"
let default_budget = 200_000

(* ------------------------------------------------------------------ *)
(* Growable int vector (watch lists, learned-clause index)             *)
(* ------------------------------------------------------------------ *)

type ivec = { mutable a : int array; mutable n : int }

let ivec_make () = { a = [||]; n = 0 }

let ipush v x =
  if v.n = Array.length v.a then begin
    let a' = Array.make (max 8 (2 * Array.length v.a)) 0 in
    Array.blit v.a 0 a' 0 v.n;
    v.a <- a'
  end;
  v.a.(v.n) <- x;
  v.n <- v.n + 1

(* ------------------------------------------------------------------ *)
(* Solver state                                                        *)
(* ------------------------------------------------------------------ *)

(* Clauses live in one growable arena [ca]: a clause reference [c] points
   at a 2-int header — [ca.(c)] is the LBD tag (0 = original clause,
   > 0 = learned clause's glue score, -1 = deleted), [ca.(c+1)] the size —
   followed by the literals at [ca.(c+2) ..].  The two watched literals
   are always at positions 0 and 1; for any clause acting as a reason,
   the implied literal is at position 0 (conflict analysis relies on
   this). *)

type cdcl = {
  mutable n_vars : int;
  mutable cap : int; (* variable capacity arrays are sized for *)
  mutable ca : int array; (* clause arena *)
  mutable ca_n : int;
  mutable watches : ivec array; (* lit index -> clause refs watching it *)
  mutable assign : int array; (* var -> 0 unassigned / 1 true / -1 false *)
  mutable var_level : int array;
  mutable var_reason : int array; (* clause ref, or -1 for decisions *)
  mutable phase : bool array; (* saved phase; initially true *)
  mutable activity : float array;
  mutable heap : int array; (* binary max-heap of candidate vars *)
  mutable heap_n : int;
  mutable heap_pos : int array; (* var -> heap slot, -1 if absent *)
  mutable trail : int array; (* assigned literals in order *)
  mutable trail_n : int;
  lim : ivec; (* trail_n at each decision level; lim.n = current level *)
  mutable qhead : int;
  mutable seen : bool array; (* conflict-analysis scratch *)
  mutable lev_mark : int array; (* LBD-count scratch, stamped *)
  mutable lev_stamp : int;
  learnts : ivec; (* refs of live learned clauses *)
  mutable var_inc : float;
  mutable max_learnts : int;
  mutable ok : bool; (* false once level-0 unsat *)
  mutable s_propagations : int;
  mutable s_decisions : int;
  mutable s_conflicts : int;
  mutable s_learned : int;
  mutable s_restarts : int;
}

let widx lit = (2 * abs lit) + if lit < 0 then 1 else 0

let cdcl_create () =
  {
    n_vars = 0;
    cap = 0;
    ca = Array.make 256 0;
    ca_n = 0;
    watches = [||];
    assign = [||];
    var_level = [||];
    var_reason = [||];
    phase = [||];
    activity = [||];
    heap = [||];
    heap_n = 0;
    heap_pos = [||];
    trail = [||];
    trail_n = 0;
    lim = ivec_make ();
    qhead = 0;
    seen = [||];
    lev_mark = [||];
    lev_stamp = 0;
    learnts = ivec_make ();
    var_inc = 1.0;
    max_learnts = 2048;
    ok = true;
    s_propagations = 0;
    s_decisions = 0;
    s_conflicts = 0;
    s_learned = 0;
    s_restarts = 0;
  }

let value t lit =
  let s = t.assign.(abs lit) in
  if lit > 0 then s else -s

(* -- VSIDS heap: max-heap on activity, lower var id breaks ties so the
   search is fully deterministic. ----------------------------------- *)

let heap_lt t v w =
  t.activity.(v) > t.activity.(w)
  || (t.activity.(v) = t.activity.(w) && v < w)

let rec heap_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_lt t t.heap.(i) t.heap.(p) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(p);
      t.heap.(p) <- tmp;
      t.heap_pos.(t.heap.(i)) <- i;
      t.heap_pos.(t.heap.(p)) <- p;
      heap_up t p
    end
  end

let rec heap_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < t.heap_n && heap_lt t t.heap.(l) t.heap.(!m) then m := l;
  if r < t.heap_n && heap_lt t t.heap.(r) t.heap.(!m) then m := r;
  if !m <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!m);
    t.heap.(!m) <- tmp;
    t.heap_pos.(t.heap.(i)) <- i;
    t.heap_pos.(t.heap.(!m)) <- !m;
    heap_down t !m
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    t.heap.(t.heap_n) <- v;
    t.heap_pos.(v) <- t.heap_n;
    t.heap_n <- t.heap_n + 1;
    heap_up t t.heap_pos.(v)
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_n <- t.heap_n - 1;
  t.heap.(0) <- t.heap.(t.heap_n);
  t.heap_pos.(t.heap.(0)) <- 0;
  t.heap_pos.(v) <- -1;
  if t.heap_n > 0 then heap_down t 0;
  v

(* -- Variable bookkeeping ------------------------------------------ *)

let grow_vars t want =
  if want > t.cap then begin
    let cap = max 16 (max want (2 * t.cap)) in
    let copy_arr mk old default =
      let a = mk (cap + 1) default in
      Array.blit old 0 a 0 (Array.length old);
      a
    in
    t.assign <- copy_arr Array.make t.assign 0;
    t.var_level <- copy_arr Array.make t.var_level 0;
    t.var_reason <-
      (let a = Array.make (cap + 1) (-1) in
       Array.blit t.var_reason 0 a 0 (Array.length t.var_reason);
       a);
    t.phase <- copy_arr Array.make t.phase true;
    t.activity <- copy_arr Array.make t.activity 0.0;
    t.heap <- copy_arr Array.make t.heap 0;
    t.heap_pos <-
      (let a = Array.make (cap + 1) (-1) in
       Array.blit t.heap_pos 0 a 0 (Array.length t.heap_pos);
       a);
    t.trail <- copy_arr Array.make t.trail 0;
    t.seen <- copy_arr Array.make t.seen false;
    t.lev_mark <- copy_arr Array.make t.lev_mark 0;
    let w = Array.make ((2 * cap) + 2) (ivec_make ()) in
    Array.blit t.watches 0 w 0 (Array.length t.watches);
    for i = Array.length t.watches to Array.length w - 1 do
      w.(i) <- ivec_make ()
    done;
    t.watches <- w;
    t.cap <- cap
  end

let cdcl_new_var t =
  let v = t.n_vars + 1 in
  grow_vars t v;
  t.n_vars <- v;
  heap_insert t v;
  v

let cdcl_ensure_vars t n =
  while t.n_vars < n do
    ignore (cdcl_new_var t)
  done

(* -- Trail --------------------------------------------------------- *)

let enqueue t lit reason =
  let v = abs lit in
  t.assign.(v) <- (if lit > 0 then 1 else -1);
  t.var_level.(v) <- t.lim.n;
  t.var_reason.(v) <- reason;
  t.trail.(t.trail_n) <- lit;
  t.trail_n <- t.trail_n + 1

let cancel_until t lev =
  if t.lim.n > lev then begin
    let stop = t.lim.a.(lev) in
    for i = t.trail_n - 1 downto stop do
      let lit = t.trail.(i) in
      let v = abs lit in
      t.phase.(v) <- lit > 0;
      t.assign.(v) <- 0;
      t.var_reason.(v) <- -1;
      heap_insert t v
    done;
    t.trail_n <- stop;
    if t.qhead > stop then t.qhead <- stop;
    t.lim.n <- lev
  end

(* -- Clause arena -------------------------------------------------- *)

let alloc_clause t lits lbd =
  let sz = Array.length lits in
  let need = t.ca_n + sz + 2 in
  if need > Array.length t.ca then begin
    let a = Array.make (max need (2 * Array.length t.ca)) 0 in
    Array.blit t.ca 0 a 0 t.ca_n;
    t.ca <- a
  end;
  let c = t.ca_n in
  t.ca.(c) <- lbd;
  t.ca.(c + 1) <- sz;
  Array.blit lits 0 t.ca (c + 2) sz;
  t.ca_n <- need;
  c

let attach_clause t c =
  ipush t.watches.(widx (-t.ca.(c + 2))) c;
  ipush t.watches.(widx (-t.ca.(c + 3))) c

(* Adding a clause backtracks to level 0 and simplifies against the
   level-0 assignment: satisfied clauses and tautologies are dropped,
   false literals removed, units enqueued (propagated lazily by the next
   [solve], which rewinds [qhead]). *)
let cdcl_add_clause t lits =
  if t.ok then begin
    cancel_until t 0;
    t.qhead <- 0;
    List.iter (fun l -> cdcl_ensure_vars t (abs l)) lits;
    let kept = ref [] and n_kept = ref 0 in
    let satisfied = ref false in
    List.iter
      (fun l ->
        if not !satisfied then
          match value t l with
          | 1 -> satisfied := true
          | -1 -> ()
          | _ ->
            if List.mem (-l) !kept then satisfied := true (* tautology *)
            else if not (List.mem l !kept) then begin
              kept := l :: !kept;
              incr n_kept
            end)
      lits;
    if not !satisfied then
      match List.rev !kept with
      | [] -> t.ok <- false
      | [ l ] -> enqueue t l (-1)
      | l0 :: l1 :: _ as ls ->
        ignore l0;
        ignore l1;
        let c = alloc_clause t (Array.of_list ls) 0 in
        attach_clause t c
  end

(* -- Propagation: two watched literals ----------------------------- *)

(* Returns the conflicting clause ref, or -1.  The deadline is polled at
   the head of each literal's watch pass — a point where every watch
   list is consistent, so a Timeout escape leaves the solver reusable
   (the next call rewinds [qhead] after backtracking). *)
let propagate t deadline =
  let conflict = ref (-1) in
  while !conflict < 0 && t.qhead < t.trail_n do
    let p = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    t.s_propagations <- t.s_propagations + 1;
    if t.s_propagations land 255 = 0 then Metrics.check deadline;
    let ws = t.watches.(widx p) in
    let i = ref 0 and j = ref 0 in
    let false_lit = -p in
    while !i < ws.n do
      let c = ws.a.(!i) in
      incr i;
      if t.ca.(c) >= 0 then begin
        (* ensure the false literal sits at position 1 *)
        if t.ca.(c + 2) = false_lit then begin
          t.ca.(c + 2) <- t.ca.(c + 3);
          t.ca.(c + 3) <- false_lit
        end;
        let first = t.ca.(c + 2) in
        if value t first = 1 then begin
          (* clause satisfied: keep the watch *)
          ws.a.(!j) <- c;
          incr j
        end
        else begin
          (* look for a new literal to watch *)
          let sz = t.ca.(c + 1) in
          let k = ref (c + 4) in
          let stop = c + 2 + sz in
          while !k < stop && value t t.ca.(!k) = -1 do
            incr k
          done;
          if !k < stop then begin
            (* found one: move it into the watch slot *)
            t.ca.(c + 3) <- t.ca.(!k);
            t.ca.(!k) <- false_lit;
            ipush t.watches.(widx (-t.ca.(c + 3))) c
          end
          else begin
            (* clause is unit or conflicting under the assignment *)
            ws.a.(!j) <- c;
            incr j;
            if value t first = -1 then begin
              conflict := c;
              t.qhead <- t.trail_n;
              while !i < ws.n do
                ws.a.(!j) <- ws.a.(!i);
                incr j;
                incr i
              done
            end
            else enqueue t first c
          end
        end
      end
    done;
    ws.n <- !j
  done;
  !conflict

(* -- EVSIDS -------------------------------------------------------- *)

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 1 to t.n_vars do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  if t.heap_pos.(v) >= 0 then heap_up t t.heap_pos.(v)

let var_decay t = t.var_inc <- t.var_inc /. 0.95

(* -- Conflict analysis (first UIP) --------------------------------- *)

(* Returns the learned clause (asserting literal first, a literal of the
   second-highest level at position 1), the backjump level and the LBD. *)
let analyze t confl =
  let learnt = ivec_make () in
  ipush learnt 0 (* slot for the asserting literal *);
  let path = ref 0 in
  let p = ref 0 in
  let idx = ref (t.trail_n - 1) in
  let c = ref confl in
  let continue = ref true in
  while !continue do
    let start = if !p = 0 then 0 else 1 in
    let sz = t.ca.(!c + 1) in
    for jj = start to sz - 1 do
      let q = t.ca.(!c + 2 + jj) in
      let v = abs q in
      if (not t.seen.(v)) && t.var_level.(v) > 0 then begin
        t.seen.(v) <- true;
        var_bump t v;
        if t.var_level.(v) >= t.lim.n then incr path else ipush learnt q
      end
    done;
    while not t.seen.(abs t.trail.(!idx)) do
      decr idx
    done;
    p := t.trail.(!idx);
    decr idx;
    t.seen.(abs !p) <- false;
    decr path;
    if !path > 0 then c := t.var_reason.(abs !p) else continue := false
  done;
  learnt.a.(0) <- - !p;
  (* clear scratch marks for the lower-level literals *)
  for i = 1 to learnt.n - 1 do
    t.seen.(abs learnt.a.(i)) <- false
  done;
  (* backjump level = highest level among the non-asserting literals;
     move one such literal to position 1 so it can be watched *)
  let bt =
    if learnt.n = 1 then 0
    else begin
      let m = ref 1 in
      for i = 2 to learnt.n - 1 do
        if t.var_level.(abs learnt.a.(i)) > t.var_level.(abs learnt.a.(!m))
        then m := i
      done;
      let tmp = learnt.a.(1) in
      learnt.a.(1) <- learnt.a.(!m);
      learnt.a.(!m) <- tmp;
      t.var_level.(abs learnt.a.(1))
    end
  in
  (* LBD: number of distinct decision levels in the learned clause *)
  t.lev_stamp <- t.lev_stamp + 1;
  let lbd = ref 0 in
  for i = 0 to learnt.n - 1 do
    let lev = t.var_level.(abs learnt.a.(i)) in
    if t.lev_mark.(lev) <> t.lev_stamp then begin
      t.lev_mark.(lev) <- t.lev_stamp;
      incr lbd
    end
  done;
  (Array.sub learnt.a 0 learnt.n, bt, !lbd)

(* -- Learned-clause DB reduction ----------------------------------- *)

let locked t c =
  let l = t.ca.(c + 2) in
  value t l = 1 && t.var_reason.(abs l) = c

(* Drop the worse half of the learned clauses, keeping glue clauses
   (LBD <= 2) and clauses currently acting as reasons.  Deletion just
   tags the header; watch lists skip dead clauses lazily. *)
let reduce_db t =
  let live = Array.sub t.learnts.a 0 t.learnts.n in
  (* worst first: high LBD, then large, then younger (higher ref) *)
  Array.sort
    (fun c1 c2 ->
      let k = compare t.ca.(c2) t.ca.(c1) in
      if k <> 0 then k
      else
        let k = compare t.ca.(c2 + 1) t.ca.(c1 + 1) in
        if k <> 0 then k else compare c2 c1)
    live;
  let target = Array.length live / 2 in
  let removed = ref 0 in
  Array.iter
    (fun c ->
      if !removed < target && t.ca.(c) > 2 && not (locked t c) then begin
        t.ca.(c) <- -1;
        incr removed
      end)
    live;
  let n = t.learnts.n in
  t.learnts.n <- 0;
  for i = 0 to n - 1 do
    let c = t.learnts.a.(i) in
    if t.ca.(c) >= 0 then ipush t.learnts c
  done;
  t.max_learnts <- t.max_learnts + (t.max_learnts / 2)

(* -- Luby restart sequence ----------------------------------------- *)

let luby i =
  (* value of the Luby sequence (1,1,2,1,1,2,4,...) at index i >= 0 *)
  let size = ref 1 and seq = ref 0 in
  while !size < i + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref i and sz = ref !size in
  while !sz - 1 <> !x do
    sz := (!sz - 1) / 2;
    decr seq;
    x := !x mod !sz
  done;
  1 lsl !seq

let restart_interval k = 64 * luby k

(* -- Search -------------------------------------------------------- *)

type outcome = O_sat of bool array | O_unsat | O_budget

let record_learnt t lits lbd =
  t.s_learned <- t.s_learned + 1;
  if Array.length lits = 1 then enqueue t lits.(0) (-1)
  else begin
    let c = alloc_clause t lits lbd in
    attach_clause t c;
    ipush t.learnts c;
    enqueue t lits.(0) c
  end

let search t ~budget ~assumps ~deadline =
  let conflicts0 = t.s_conflicts in
  let since_restart = ref 0 in
  let restart_k = ref 0 in
  let restart_lim = ref (restart_interval 0) in
  let n_assumps = Array.length assumps in
  let out = ref None in
  while !out = None do
    let confl = propagate t deadline in
    if confl >= 0 then begin
      t.s_conflicts <- t.s_conflicts + 1;
      incr since_restart;
      if t.lim.n = 0 then begin
        t.ok <- false;
        out := Some O_unsat
      end
      else if t.s_conflicts - conflicts0 > budget then out := Some O_budget
      else begin
        let lits, bt, lbd = analyze t confl in
        (* a backjump below the assumption levels is fine: the decision
           loop re-establishes any unassigned assumptions before
           branching *)
        cancel_until t bt;
        record_learnt t lits lbd;
        var_decay t
      end
    end
    else if !since_restart >= !restart_lim then begin
      t.s_restarts <- t.s_restarts + 1;
      incr restart_k;
      restart_lim := restart_interval !restart_k;
      since_restart := 0;
      cancel_until t 0
    end
    else begin
      if t.learnts.n >= t.max_learnts then reduce_db t;
      if t.lim.n < n_assumps then begin
        (* (re-)establish the next assumption as its own decision level *)
        let p = assumps.(t.lim.n) in
        match value t p with
        | 1 -> ipush t.lim t.trail_n (* dummy level: already true *)
        | -1 -> out := Some O_unsat (* unsat under assumptions *)
        | _ ->
          ipush t.lim t.trail_n;
          enqueue t p (-1)
      end
      else begin
        (* pick a branching variable *)
        let v = ref 0 in
        while !v = 0 && t.heap_n > 0 do
          let w = heap_pop t in
          if t.assign.(w) = 0 then v := w
        done;
        if !v = 0 then begin
          let model = Array.make (t.n_vars + 1) false in
          for i = 1 to t.n_vars do
            model.(i) <- t.assign.(i) = 1
          done;
          out := Some (O_sat model)
        end
        else begin
          t.s_decisions <- t.s_decisions + 1;
          ipush t.lim t.trail_n;
          enqueue t (if t.phase.(!v) then !v else - !v) (-1)
        end
      end
    end
  done;
  Option.get !out

let cdcl_solve ?(budget = default_budget) ?(assumptions = [])
    ?(deadline = Metrics.no_deadline) t =
  if not t.ok then Some Unsat
  else begin
    Metrics.check deadline;
    List.iter (fun l -> cdcl_ensure_vars t (abs l)) assumptions;
    (* assumption dummy levels can push the level count past n_vars;
       make sure the level-indexed scratch arrays cover them *)
    grow_vars t (t.n_vars + List.length assumptions + 1);
    cancel_until t 0;
    t.qhead <- 0;
    let assumps = Array.of_list assumptions in
    match search t ~budget ~assumps ~deadline with
    | O_sat model ->
      cancel_until t 0;
      Some (Sat model)
    | O_unsat ->
      cancel_until t 0;
      Some Unsat
    | O_budget ->
      cancel_until t 0;
      None
  end

let cdcl_counts t =
  {
    propagations = t.s_propagations;
    decisions = t.s_decisions;
    conflicts = t.s_conflicts;
    learned = t.s_learned;
    restarts = t.s_restarts;
  }

(* ------------------------------------------------------------------ *)
(* Public interface: dispatch between CDCL and the reference DPLL      *)
(* ------------------------------------------------------------------ *)

type t = C of cdcl | R of Sat_ref.t

let create () =
  match !selected with Cdcl -> C (cdcl_create ()) | Ref -> R (Sat_ref.create ())

let new_var = function C s -> cdcl_new_var s | R s -> Sat_ref.new_var s

let ensure_vars t n =
  match t with C s -> cdcl_ensure_vars s n | R s -> Sat_ref.ensure_vars s n

let add_clause t lits =
  match t with C s -> cdcl_add_clause s lits | R s -> Sat_ref.add_clause s lits

let counts = function C s -> cdcl_counts s | R s -> Sat_ref.counts s

let solve ?budget ?assumptions ?deadline t =
  match t with
  | C s -> cdcl_solve ?budget ?assumptions ?deadline s
  | R s -> (
    match Sat_ref.solve ?budget ?assumptions ?deadline s with
    | Some (Sat_ref.Sat m) -> Some (Sat m)
    | Some Sat_ref.Unsat -> Some Unsat
    | None -> None)
