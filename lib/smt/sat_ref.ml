(* The pre-CDCL chronological DPLL core, preserved verbatim in structure so
   its search order (and hence its models) match the historical solver.
   Additions over the original: search-effort counters, conflict-based
   budgets (aligned with the CDCL core's semantics) and solving under
   assumption literals. *)

type t = {
  mutable n_vars : int;
  mutable clauses : int array list;
  mutable trivially_unsat : bool;
  mutable c_propagations : int;
  mutable c_decisions : int;
  mutable c_conflicts : int;
}

let create () =
  {
    n_vars = 0;
    clauses = [];
    trivially_unsat = false;
    c_propagations = 0;
    c_decisions = 0;
    c_conflicts = 0;
  }

let new_var t =
  t.n_vars <- t.n_vars + 1;
  t.n_vars

let ensure_vars t n = if n > t.n_vars then t.n_vars <- n

let add_clause t lits =
  match lits with
  | [] -> t.trivially_unsat <- true
  | _ ->
    List.iter (fun l -> ensure_vars t (abs l)) lits;
    t.clauses <- Array.of_list lits :: t.clauses

type result = Sat of bool array | Unsat

type counts = {
  propagations : int;
  decisions : int;
  conflicts : int;
  learned : int;
  restarts : int;
}

let counts t =
  {
    propagations = t.c_propagations;
    decisions = t.c_decisions;
    conflicts = t.c_conflicts;
    learned = 0;
    restarts = 0;
  }

(* Assignment: 0 = unassigned, 1 = true, -1 = false. *)

exception Budget

module Metrics = Pinpoint_util.Metrics

let solve ?(budget = 1_000_000) ?(assumptions = []) ?(deadline = Metrics.no_deadline)
    t =
  if t.trivially_unsat then Some Unsat
  else begin
    List.iter (fun l -> ensure_vars t (abs l)) assumptions;
    let n = t.n_vars in
    let assign = Array.make (n + 1) 0 in
    let clauses = Array.of_list t.clauses in
    let steps = ref 0 in
    let conflicts0 = t.c_conflicts in
    let value lit =
      let v = assign.(abs lit) in
      if v = 0 then 0 else if (lit > 0) = (v = 1) then 1 else -1
    in
    (* Assumptions are pinned before search; a contradictory set is Unsat
       under assumptions (the instance itself is untouched). *)
    let assumptions_ok =
      List.for_all
        (fun lit ->
          match value lit with
          | -1 -> false
          | _ ->
            assign.(abs lit) <- (if lit > 0 then 1 else -1);
            true)
        assumptions
    in
    (* Unit propagation over all clauses; returns false on conflict and the
       list of literals assigned (to undo). *)
    let rec propagate trail =
      let changed = ref false in
      let conflict = ref false in
      let trail = ref trail in
      Array.iter
        (fun clause ->
          if not !conflict then begin
            let unassigned = ref 0 and last = ref 0 and sat = ref false in
            Array.iter
              (fun lit ->
                match value lit with
                | 1 -> sat := true
                | 0 ->
                  incr unassigned;
                  last := lit
                | _ -> ())
              clause;
            if not !sat then
              if !unassigned = 0 then conflict := true
              else if !unassigned = 1 then begin
                let lit = !last in
                assign.(abs lit) <- (if lit > 0 then 1 else -1);
                t.c_propagations <- t.c_propagations + 1;
                trail := abs lit :: !trail;
                changed := true
              end
          end)
        clauses;
      if !conflict then (false, !trail)
      else if !changed then propagate !trail
      else (true, !trail)
    in
    let undo_to trail stop =
      let rec go = function
        | l when l == stop -> ()
        | [] -> ()
        | v :: rest ->
          assign.(v) <- 0;
          go rest
      in
      go trail
    in
    let rec pick_var () =
      (* First unassigned variable that appears in an unsatisfied clause;
         fall back to any unassigned variable. *)
      let best = ref 0 in
      (try
         Array.iter
           (fun clause ->
             let sat = ref false and cand = ref 0 in
             Array.iter
               (fun lit ->
                 match value lit with
                 | 1 -> sat := true
                 | 0 -> if !cand = 0 then cand := abs lit
                 | _ -> ())
               clause;
             if (not !sat) && !cand <> 0 then begin
               best := !cand;
               raise Exit
             end)
           clauses
       with Exit -> ());
      if !best <> 0 then !best
      else begin
        let v = ref 0 in
        (try
           for i = 1 to n do
             if assign.(i) = 0 then begin
               v := i;
               raise Exit
             end
           done
         with Exit -> ());
        !v
      end
    and dpll () =
      incr steps;
      (* Cooperative deadline poll: an adversarial instance must not stall
         the checker past its wall-clock budget (the conflict budget alone
         is not time-bounded). *)
      if !steps land 15 = 0 then Metrics.check deadline;
      let ok, trail = propagate [] in
      if not ok then begin
        t.c_conflicts <- t.c_conflicts + 1;
        if t.c_conflicts - conflicts0 > budget then raise Budget;
        undo_to trail [];
        false
      end
      else begin
        let v = pick_var () in
        if v = 0 then true (* all satisfied/assigned consistently *)
        else begin
          let try_value b =
            t.c_decisions <- t.c_decisions + 1;
            assign.(v) <- (if b then 1 else -1);
            let r = dpll () in
            if not r then assign.(v) <- 0;
            r
          in
          if try_value true then true
          else if try_value false then true
          else begin
            undo_to trail [];
            false
          end
        end
      end
    in
    try
      if not assumptions_ok then Some Unsat
      else if dpll () then begin
        let model = Array.make (n + 1) false in
        for i = 1 to n do
          model.(i) <- assign.(i) = 1
        done;
        Some (Sat model)
      end
      else Some Unsat
    with Budget -> None
  end
