(* Unsat-core subsumption cache (DESIGN.md §4.17).

   The verdict cache ({!Qcache}) only replays *exact* formulas: two
   candidates from the same source share most of their conjuncts, yet a
   single differing sink conjunct makes them distinct hash-cons nodes and
   the cache misses.  This cache works at the granularity the engine
   actually assembles conditions at — the top-level conjunct set of the
   path condition's ∧-spine.  When the full solver proves a conjunction
   Unsat, the solver shrinks the conjunct set by deletion to a still-Unsat
   subset (the core) and stores it here as a sorted hash-cons-id set.  A
   later query whose conjunct set is a *superset* of any stored core is
   Unsat without touching CDCL: a conjunction containing an unsatisfiable
   subset is unsatisfiable, whatever else it conjoins.

   Soundness is one-directional by construction — a subsumption hit only
   ever answers Unsat, and only when the query provably contains a core —
   so a hit is exchangeable with recomputation and reports stay identical
   at every [--jobs] level, exactly like {!Qcache} hits.

   Indexing: a core is filed under its minimum conjunct id.  A probe walks
   the query's sorted conjunct-id set and, for each id, subset-tests the
   cores filed under it (a core ⊆ query implies the core's minimum is one
   of the query's ids), so lookup is O(conjuncts · cores-per-bucket) with
   a two-pointer merge per test.  Shards bound contention the same way
   {!Qcache}'s do.

   Bounding: each shard holds at most [shard_cap] cores; inserts into a
   full shard are dropped (forgetting a core only costs a future
   recomputation).  {!clear} resets everything between bench cells. *)

module Obs = Pinpoint_obs.Obs

let n_shards = 16
let shard_cap = 1024

type shard = {
  lock : Mutex.t;
  tbl : (int, int array list) Hashtbl.t;  (** min conjunct id -> cores *)
  mutable count : int;
}

let shards =
  Array.init n_shards (fun _ ->
      { lock = Mutex.create (); tbl = Hashtbl.create 64; count = 0 })

(* Off by default, like {!Qcache}: the engine enables it per run (config
   [use_corecache], CLI [--no-core-cache]). *)
let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* Lifetime counters (process-wide). *)
let n_probes = Atomic.make 0
let n_hits = Atomic.make 0
let n_stores = Atomic.make 0
let n_shrink_checks = Atomic.make 0

let note_shrink_check () =
  Atomic.incr n_shrink_checks;
  if Obs.metrics_on () then Obs.add (Obs.counter "corecache.n_shrink_check") 1

let shard_of_id id = shards.((id land max_int) mod n_shards)

(* The top-level conjunct set: flatten the ∧-spine recursively and
   deduplicate by hash-cons id.  [Expr.conj_balanced] dedups the list it
   is given, but engine conditions nest pre-built conjunctions (DD/CD
   closures), so the flattened spine can still repeat a conjunct. *)
let conjuncts (e : Expr.t) : Expr.t list =
  let seen = Hashtbl.create 32 in
  let acc = ref [] in
  let rec go (e : Expr.t) =
    match e.Expr.node with
    | Expr.And (a, b) ->
      go a;
      go b
    | _ ->
      if not (Hashtbl.mem seen e.Expr.id) then begin
        Hashtbl.add seen e.Expr.id ();
        acc := e :: !acc
      end
  in
  go e;
  List.rev !acc

let ids_of conjs =
  let a = Array.of_list (List.map (fun (c : Expr.t) -> c.Expr.id) conjs) in
  Array.sort compare a;
  a

(* core ⊆ query, both sorted ascending: two-pointer merge. *)
let subset (core : int array) (query : int array) =
  let nc = Array.length core and nq = Array.length query in
  let rec go i j =
    if i >= nc then true
    else if j >= nq then false
    else if core.(i) = query.(j) then go (i + 1) (j + 1)
    else if core.(i) > query.(j) then go i (j + 1)
    else false
  in
  nc <= nq && go 0 0

let probe (e : Expr.t) : bool =
  enabled ()
  && begin
       Atomic.incr n_probes;
       if Obs.metrics_on () then Obs.add (Obs.counter "corecache.n_probe") 1;
       let query = ids_of (conjuncts e) in
       let n = Array.length query in
       let hit = ref false in
       let i = ref 0 in
       while (not !hit) && !i < n do
         let id = query.(!i) in
         let s = shard_of_id id in
         let cores =
           Mutex.protect s.lock (fun () ->
               Option.value (Hashtbl.find_opt s.tbl id) ~default:[])
         in
         if List.exists (fun core -> subset core query) cores then hit := true;
         incr i
       done;
       if !hit then begin
         Atomic.incr n_hits;
         if Obs.metrics_on () then
           Obs.add (Obs.counter "corecache.n_subsume_hit") 1
       end;
       !hit
     end

let store (core_conjs : Expr.t list) : unit =
  if enabled () && core_conjs <> [] then begin
    let ids = ids_of core_conjs in
    let min_id = ids.(0) in
    let s = shard_of_id min_id in
    Mutex.protect s.lock (fun () ->
        let cur = Option.value (Hashtbl.find_opt s.tbl min_id) ~default:[] in
        if s.count < shard_cap && not (List.exists (fun c -> c = ids) cur) then begin
          Hashtbl.replace s.tbl min_id (ids :: cur);
          s.count <- s.count + 1;
          Atomic.incr n_stores;
          if Obs.metrics_on () then Obs.add (Obs.counter "corecache.n_store") 1
        end)
  end

let clear () =
  Array.iter
    (fun s ->
      Mutex.protect s.lock (fun () ->
          Hashtbl.reset s.tbl;
          s.count <- 0))
    shards

let length () =
  Array.fold_left
    (fun acc s -> acc + Mutex.protect s.lock (fun () -> s.count))
    0 shards

type stats = {
  entries : int;
  probes : int;
  hits : int;
  stores : int;
  shrink_checks : int;
}

let stats () =
  {
    entries = length ();
    probes = Atomic.get n_probes;
    hits = Atomic.get n_hits;
    stores = Atomic.get n_stores;
    shrink_checks = Atomic.get n_shrink_checks;
  }
