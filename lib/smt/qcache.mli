(** Shared SMT verdict cache (DESIGN.md §4.10).

    A process-wide, sharded (mutex-per-shard) map from hash-consed formulas
    to definitive solver verdicts.  {!Solver.check_with_model} and
    {!Solver.check_degrading} consult it before running any solver work and
    store full-strength [Sat]/[Unsat] results back; [Unknown] and verdicts
    decided below the full rung are never cached.  Because satisfiability
    is a pure function of the (hash-consed) formula, a hit is
    indistinguishable from recomputation — [--jobs N] report determinism is
    preserved regardless of which domain populated an entry.

    Interaction with fault injection: {!Solver.check_degrading} draws its
    injection fault {e before} consulting the cache, and a sabotaged query
    bypasses the cache entirely (no read, no write) — see the solver
    documentation. *)

type entry =
  | Cached_sat of (Expr.t * bool) list
      (** satisfiable, with the propositional model of its atoms (the
          trigger hints a report would carry) *)
  | Cached_unsat

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Globally enable/disable the cache (default: disabled, so direct solver
    clients keep their historical behaviour).  {!Pinpoint.Engine.run}
    enables it for the duration of a run when its config asks for it; the
    CLI exposes [--no-qcache]. *)

val find : Expr.t -> entry option
(** [None] when disabled or absent.  Thread-safe. *)

val add : Expr.t -> entry -> unit
(** No-op when disabled.  Callers must only store verdicts produced by the
    full-strength solver.  Thread-safe; a racing double-insert stores the
    same pure value. *)

val clear : unit -> unit
(** Drop every entry (all shards).  Benchmarks call this between measured
    runs so hit rates reflect a single cold run. *)

val length : unit -> int
(** Total number of cached verdicts across shards. *)

val set_capacity : int option -> unit
(** [set_capacity (Some n)] bounds the cache at ~[n] entries (split evenly
    over the shards, at least one per shard): each shard keeps its entries
    in a clock ring — a hit sets a reference bit, an insert into a full
    shard sweeps the hand, clearing bits, and evicts the first cold slot
    (second-chance LRU).  Eviction only forgets verdicts, so a cap never
    changes reports — a batch run is oblivious to it, a resident server
    needs it to bound RSS (DESIGN.md §4.13).  [None] (the default)
    restores unbounded growth.  Changing the capacity resets the cache. *)

val capacity : unit -> int option
(** The configured total entry cap, if any. *)

type stats = {
  entries : int;        (** live entries across shards *)
  cap : int option;     (** configured capacity *)
  evictions : int;      (** clock evictions since process start *)
  inserts : int;        (** inserts since process start *)
  probes : int;         (** [find] calls while enabled, process-wide *)
}

val stats : unit -> stats
(** Lifetime cache statistics (process-wide; the counters are monotonic
    and survive {!clear}).  Published as [qcache.*] gauges by
    {!Solver.obs_publish}; when metrics are on, every probe/insert also
    bumps the [qcache.n_probe] / [qcache.n_insert] Obs counters. *)

(** {1 Near misses}

    The cache key is the hash-cons id, so two formulas over the same
    comparison atoms but with different boolean structure never hit each
    other.  When metrics are on, probes are additionally grouped by the
    multiset of their atom ids; groups holding two or more distinct
    formula ids are {e near misses} — an upper bound on what a
    structure-normalising cache key could additionally recover.  Exported
    as the [qcache_near_misses] section of [--metrics-json]. *)

type near_miss = {
  signature : int;  (** hash of the sorted atom-id multiset *)
  atoms : int;      (** size of the multiset *)
  ids : int list;   (** distinct formula ids probed, ascending (capped) *)
  probes : int;     (** probes landing in this group *)
}

val near_misses : ?top_k:int -> unit -> near_miss list
(** Top groups with ≥ 2 distinct ids, by descending probe count. *)
