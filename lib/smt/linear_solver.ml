type verdict = Unsat | Maybe

module ISet = Set.Make (Int)

(* Counters are shared across domains (the PTA phase and engine feasibility
   checks both run in workers); atomics keep them exact without a lock. *)
let n_checks = Atomic.make 0
let n_unsat = Atomic.make 0

(* Canonical atom id and polarity of an atomic boolean expression.
   Complement pairs map to the same canonical id with opposite polarity:
   [Lt (a,b)] and [Le (b,a)], [Eq (a,b)] and [Ne (a,b)]. *)
let canon (e : Expr.t) : int * bool =
  match e.node with
  | Expr.Le (a, b) -> ((Expr.lt b a).id, false)
  | Expr.Ne (a, b) -> ((Expr.eq a b).id, false)
  | _ -> (e.id, true)

(* P and N sets as sets of canonical atom ids.

   The paper's rules assume negation normal form (the ¬ rule as stated is
   only exact over atoms: ¬(a ∧ b) must read as ¬a ∨ ¬b, or the solver
   would wrongly refute b1 ∧ ¬(b1 ∧ b2)).  We therefore push polarity
   through the connectives De-Morgan style during the single traversal —
   still linear in the number of atomic constraints. *)
let rec pn polarity (e : Expr.t) : ISet.t * ISet.t =
  match e.node with
  | Expr.True | Expr.False -> (ISet.empty, ISet.empty)
  | Expr.Not c -> pn (not polarity) c
  | Expr.And (a, b) ->
    let pa, na = pn polarity a and pb, nb = pn polarity b in
    if polarity then (ISet.union pa pb, ISet.union na nb)
    else (* ¬(a ∧ b) = ¬a ∨ ¬b *)
      (ISet.inter pa pb, ISet.inter na nb)
  | Expr.Or (a, b) ->
    let pa, na = pn polarity a and pb, nb = pn polarity b in
    if polarity then (ISet.inter pa pb, ISet.inter na nb)
    else (* ¬(a ∨ b) = ¬a ∧ ¬b *)
      (ISet.union pa pb, ISet.union na nb)
  | Expr.Var _ | Expr.Eq _ | Expr.Ne _ | Expr.Lt _ | Expr.Le _ ->
    let id, pos = canon e in
    let pos = pos = polarity in
    if pos then (ISet.singleton id, ISet.empty) else (ISet.empty, ISet.singleton id)
  | Expr.Int _ | Expr.Add _ | Expr.Sub _ | Expr.Mul _ | Expr.Neg _ ->
    (* Not boolean; cannot appear as a condition, but be defensive. *)
    (ISet.empty, ISet.empty)

let check e =
  Atomic.incr n_checks;
  if Expr.is_false e then begin
    Atomic.incr n_unsat;
    Unsat
  end
  else begin
    let p, n = pn true e in
    if ISet.is_empty (ISet.inter p n) then Maybe
    else begin
      Atomic.incr n_unsat;
      Unsat
    end
  end

let stats () = (Atomic.get n_checks, Atomic.get n_unsat)

let reset_stats () =
  Atomic.set n_checks 0;
  Atomic.set n_unsat 0
