(** The paper's linear-time constraint solver (§3.1.1).

    During the intra-procedural points-to analysis, Pinpoint filters out the
    "easy" unsatisfiable path conditions — those containing an apparent
    contradiction [a && !a] — without invoking a full SMT solver.  The
    solver collects the positive and negative atomic constraints P(C) and
    N(C) of a condition C bottom-up:

    {v
      C = a        =>  P = {a},          N = {}
      C = !C1      =>  P = N(C1),        N = P(C1)
      C = C1 && C2 =>  P = P1 ∪ P2,      N = N1 ∪ N2
      C = C1 || C2 =>  P = P1 ∩ P2,      N = N1 ∩ N2
    v}

    The ¬ rule as stated is exact only over atoms, so the traversal pushes
    polarity through the connectives (De Morgan) and applies the rules in
    negation normal form.  C is declared unsatisfiable iff P(C) ∩ N(C) ≠ ∅.  The check is linear
    in the number of atomic constraints.

    Because {!Expr}'s smart constructors push negation into comparisons
    (¬(a<b) is represented as b≤a), atoms are first mapped to a canonical
    (atom, polarity) pair — e.g. [Le (a, b)] is the negation of the
    canonical atom [Lt (b, a)] — so the contradiction test matches the
    paper's semantics exactly. *)

type verdict =
  | Unsat  (** definitely unsatisfiable (contains [a && !a]) *)
  | Maybe  (** no apparent contradiction; a full solver would be needed *)

val check : Expr.t -> verdict

val stats : unit -> int * int
(** [(checks, easy_unsat)] counters since startup (or the last {!reset});
    reported by the bench harness's [solverstats] experiment. *)

val reset_stats : unit -> unit
