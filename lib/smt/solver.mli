(** The full SMT solver — Pinpoint's stand-in for Z3 (see DESIGN.md §1).

    A classic lazy-SMT loop: the boolean skeleton of the formula is
    Tseitin-encoded and handed to the DPLL core ({!Sat}); whenever the core
    finds a propositional model, the conjunction of the atom literals it
    assigns is checked by the linear-arithmetic theory solver ({!Theory});
    theory conflicts are returned to the core as blocking clauses.

    Used only at the bug-detection stage to decide the feasibility of
    candidate value-flow paths (§3.3); the points-to stage uses the
    linear-time solver instead (§3.1.1). *)

type verdict =
  | Sat      (** a propositional model passed the theory check *)
  | Unsat    (** no propositional model survives the theory *)
  | Unknown  (** budget exhausted or theory gave up; treated as Sat by
                 soundy clients *)

val check : ?max_iters:int -> Expr.t -> verdict
(** Decide satisfiability of a formula.  [max_iters] caps the number of
    theory-refutation rounds (default 400). *)

val check_with_model :
  ?max_iters:int -> Expr.t -> verdict * (Expr.t * bool) list
(** Like {!check}, but on [Sat] also returns the propositional model of
    the formula's atoms (atom expression, assigned polarity) — the branch
    outcomes that make a bug path feasible, used as trigger hints in
    reports.  The list is empty for [Unsat]/[Unknown]. *)

val sat_or_unknown : verdict -> bool
(** The soundy reading used by checkers: keep the report unless the path
    condition is definitely unsatisfiable. *)

type stats = {
  mutable n_queries : int;
  mutable n_sat : int;
  mutable n_unsat : int;
  mutable n_unknown : int;
  mutable n_theory_calls : int;
}

val stats : stats
val reset_stats : unit -> unit
