(** The full SMT solver — Pinpoint's stand-in for Z3 (see DESIGN.md §1).

    A classic lazy-SMT loop: the boolean skeleton of the formula is
    Tseitin-encoded and handed to the CDCL core ({!Sat}); whenever the core
    finds a propositional model, the conjunction of the atom literals it
    assigns is checked by the linear-arithmetic theory solver ({!Theory});
    theory conflicts are returned to the core as blocking clauses.

    The loop is {e incremental}: the encoding is built once per query, the
    root literal is asserted as a solver {e assumption}, and blocking
    clauses as well as the CDCL core's learned clauses persist across
    refutation rounds — and across degradation-ladder rungs, which re-enter
    the same solver state with smaller budgets instead of rebuilding the
    CNF.

    Used only at the bug-detection stage to decide the feasibility of
    candidate value-flow paths (§3.3); the points-to stage uses the
    linear-time solver instead (§3.1.1).

    Robustness: every entry point accepts a cooperative wall-clock
    [deadline] (polled inside the DPLL loop, the refutation loop and the
    theory solver), and {!check_degrading} wraps the whole query in a
    degradation ladder so a pathological or sabotaged query can never take
    down a checker run. *)

type verdict =
  | Sat      (** a propositional model passed the theory check *)
  | Unsat    (** no propositional model survives the theory *)
  | Unknown  (** budget exhausted or theory gave up; treated as Sat by
                 soundy clients *)

val check :
  ?max_iters:int ->
  ?conflict_budget:int ->
  ?deadline:Pinpoint_util.Metrics.deadline ->
  Expr.t ->
  verdict
(** Decide satisfiability of a formula.  [max_iters] caps the number of
    theory-refutation rounds (default 400); [conflict_budget] caps the
    CDCL conflicts each SAT call may spend (default
    {!Sat.default_budget}).  On [deadline] expiry
    {!Pinpoint_util.Metrics.Timeout} is raised (use {!check_degrading} for
    the non-raising, degrading variant). *)

val check_with_model :
  ?max_iters:int ->
  ?conflict_budget:int ->
  ?deadline:Pinpoint_util.Metrics.deadline ->
  Expr.t ->
  verdict * (Expr.t * bool) list
(** Like {!check}, but on [Sat] also returns the propositional model of
    the formula's atoms (atom expression, assigned polarity) — the branch
    outcomes that make a bug path feasible, used as trigger hints in
    reports.  The list is empty for [Unsat]/[Unknown].

    When {!Qcache} is enabled, the cache is consulted first (a hit skips
    the solver entirely and replays the stored verdict and model) and
    definitive [Sat]/[Unsat] results are stored back.  [Unknown] is never
    cached. *)

val sat_or_unknown : verdict -> bool
(** The soundy reading used by checkers: keep the report unless the path
    condition is definitely unsatisfiable. *)

(** {1 Degradation ladder}

    On budget exhaustion (or injected faults) a query steps down:
    full lazy-SMT → retry with halved [max_iters] and half the wall budget
    → the linear-time contradiction solver (paper §3.1.1) → keep-the-report
    ([Unknown]).  Every rung only ever answers [Unsat] when the formula
    really is unsatisfiable, so degradation can never lose a
    definitely-feasible report — the soundy direction is preserved on
    every rung. *)

type rung =
  | Rung_full     (** the full lazy-SMT loop decided (or answered its
                      normal budgeted [Unknown]) *)
  | Rung_halved   (** decided on retry with halved budgets *)
  | Rung_linear   (** refuted by the linear-time contradiction solver *)
  | Rung_gave_up  (** every rung exhausted: [Unknown], report kept *)
  | Rung_cached   (** replayed from {!Qcache} — a previous full-rung
                      verdict for the same (hash-consed) formula; as
                      strong as [Rung_full], not a degradation *)

val rung_name : rung -> string
val pp_rung : Format.formatter -> rung -> unit

(** {1 Per-source solver carryover}

    Queries emitted while checking one source share most of their atoms:
    the path-condition prefix is common, only sink conjuncts differ.  A
    [Carry.t] pouch collects the theory blocking cores (lemmas) learned
    while solving each query; on the next query from the same source every
    lemma whose atoms all recur is re-seeded as a clause before solving.
    Lemmas are theory-valid (the theory refuted that atom assignment), so
    seeding never changes a verdict — it only prunes the CDCL search,
    which {!stats} proves as strictly fewer propagations. *)
module Carry : sig
  type t

  val create : unit -> t
  (** An empty pouch.  Engine code creates one per source task, so the
      lemma stream is sequential and deterministic at every [--jobs]
      level.  Harvesting and seeding happen inside {!check_degrading}
      when the pouch is passed as [?carry]. *)
end

val check_degrading :
  ?max_iters:int ->
  ?budget_s:float ->
  ?conflict_budget:int ->
  ?deadline:Pinpoint_util.Metrics.deadline ->
  ?log:Pinpoint_util.Resilience.log ->
  ?carry:Carry.t ->
  ?subject:string ->
  Expr.t ->
  verdict * (Expr.t * bool) list * rung
(** Never raises (except [Out_of_memory]): crashes and timeouts inside a
    rung are converted into a step down the ladder, each step recorded as
    an incident on [log] (if given) under [subject].  [budget_s] is the
    per-query wall budget of the full rung and [conflict_budget] its
    per-SAT-call conflict budget (the retry gets half of each, on the
    {e same} solver state: rung escalation resumes the incrementally
    encoded instance under assumptions, keeping learned and blocking
    clauses).  [deadline] is the enclosing (checker-run) deadline — the
    effective rung deadline is the earlier of the two.  Consults
    {!Pinpoint_util.Resilience.Inject} for seeded fault injection.

    Cache interaction (when {!Qcache} is enabled): the injection fault is
    drawn {e before} the cache is consulted — one draw per query whether it
    hits or misses, so the per-subject fault stream stays aligned with the
    query sequence at every [--jobs] level.  A sabotaged query bypasses the
    cache entirely (no read, no write).  Unsabotaged queries replay a hit
    as [Rung_cached] (not counted as degraded) and store full-rung
    [Sat]/[Unsat] verdicts back; halved/linear/gave-up verdicts are never
    cached.

    {!Corecache} interaction: on a {!Qcache} miss the query's conjunct
    set is probed for a stored unsat core — a subsumption hit answers
    [Unsat] as [Rung_cached] without launching CDCL (counted in
    [n_subsume_hits]).  An unsabotaged full-rung [Unsat] deletion-shrinks
    its conjunct set and stores the core.  [carry], if given, is the
    per-source lemma pouch: applicable lemmas are seeded into the freshly
    encoded instance and this query's learned blocking cores are
    harvested back into it. *)

type stats = {
  mutable n_queries : int;
  mutable n_sat : int;
  mutable n_unsat : int;
  mutable n_unknown : int;
  mutable n_theory_calls : int;
  mutable n_deadline_abort : int;  (** rungs aborted by deadline expiry *)
  mutable n_degraded : int;        (** queries decided below the full rung *)
  mutable n_cache_hits : int;      (** queries replayed from {!Qcache} *)
  mutable n_cache_misses : int;    (** cache-enabled queries that ran the
                                       solver (disabled cache counts
                                       neither hits nor misses) *)
  mutable n_subsume_hits : int;    (** {!Qcache} misses answered [Unsat] by
                                       a {!Corecache} subsumption probe *)
  mutable n_core_shrink_calls : int;
      (** unsat-core deletion-shrink passes run by the lazy-SMT loop *)
  mutable n_propagations : int;  (** CDCL unit propagations *)
  mutable n_conflicts : int;     (** CDCL conflicts (the budget unit) *)
  mutable n_learned : int;       (** clauses learned by conflict analysis *)
  mutable n_restarts : int;      (** CDCL restarts *)
  mutable n_ne_dropped : int;
      (** disequalities dropped past {!Theory.max_ne_splits} — each one an
          explicit over-approximation of satisfiability *)
  mutable n_carry_stored : int;
      (** theory lemmas harvested into per-source {!Carry} pouches *)
  mutable n_carry_seeded : int;
      (** carried lemmas re-seeded into a later query's CDCL instance *)
}

val stats : unit -> stats
(** The calling domain's counter record.  Counters are {e domain-local}
    (one record per domain, via [Domain.DLS]): workers accumulate without
    contention and a parallel client measures each task with
    {!snapshot}/{!diff} on the domain that ran it, then {!merge}s the
    deltas in a deterministic order. *)

val reset_stats : unit -> unit
(** Zero the calling domain's counters. *)

val zero : unit -> stats
(** A fresh all-zero counter record. *)

val snapshot : unit -> stats
(** An independent copy of the calling domain's current counters. *)

val restore : stats -> unit
(** Overwrite the calling domain's counters with the given values.
    Together with {!snapshot} and {!merge} this lets {!Pinpoint.Engine.run}
    keep per-run counts without corrupting an enclosing measurement. *)

val merge : stats -> stats -> stats
(** Field-wise sum. *)

val diff : stats -> stats -> stats
(** [diff a b] is the field-wise difference [a - b] — the delta between
    two snapshots taken on the same domain. *)

val obs_publish : stats -> unit
(** Add every field of [stats] to the {!Pinpoint_obs.Obs} registry under
    the ["solver."] prefix — the compatibility view of the legacy counter
    record (includes the {!Qcache} hit/miss counters).  No-op unless the
    observability level is at least [Metrics_only]. *)
