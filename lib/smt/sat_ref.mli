(** The original chronological DPLL core, kept as a reference oracle.

    This is the pre-CDCL solver: unit propagation by scanning every clause,
    chronological backtracking, no learning, no decision heuristic.  It is
    retained for differential testing ({!Sat} cross-checks CDCL verdicts and
    models against it), for the [PINPOINT_SAT=ref] ablation (CI diffs corpus
    reports byte-for-byte between the two cores) and for the [bench smt]
    old-vs-new comparison.  Production code should go through {!Sat}, which
    dispatches to this module only when explicitly asked to. *)

type t

val create : unit -> t

val new_var : t -> int
(** Allocate the next variable (starting at 1). *)

val ensure_vars : t -> int -> unit
(** Make sure variables up to the given id exist. *)

val add_clause : t -> int list -> unit
(** Add a clause (list of literals).  The empty clause makes the instance
    trivially unsatisfiable. *)

type result =
  | Sat of bool array
      (** [model.(v)] is the value of variable [v]; index 0 is unused. *)
  | Unsat

type counts = {
  propagations : int;  (** literals assigned by unit propagation *)
  decisions : int;     (** branching variable assignments *)
  conflicts : int;     (** falsified clauses hit during search *)
  learned : int;       (** always 0 here: this core does not learn *)
  restarts : int;      (** always 0 here: this core never restarts *)
}

val counts : t -> counts
(** Cumulative search-effort counters for this instance (monotonic across
    [solve] calls; shared field layout with {!Sat.counts}). *)

val solve :
  ?budget:int ->
  ?assumptions:int list ->
  ?deadline:Pinpoint_util.Metrics.deadline ->
  t ->
  result option
(** Solve under the given assumption literals.  [budget] caps the number
    of {e conflicts} this call may hit (matching {!Sat.solve}'s semantics);
    [None] means the budget was exhausted.  The wall-clock [deadline] is
    polled cooperatively inside the DPLL loop; on expiry
    {!Pinpoint_util.Metrics.Timeout} is raised. *)
