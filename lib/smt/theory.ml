type verdict = Sat | Unsat | Unknown

let max_ne_splits = 10
let max_derived = 4000

(* Disequalities dropped past [max_ne_splits] silently over-approximate
   satisfiability; this domain-local counter makes the loss observable
   ({!Solver} folds the delta into its [n_ne_dropped] stat). *)
let dropped_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let n_dropped () = !(Domain.DLS.get dropped_key)

(* A linear expression: map from variable key to rational coefficient, plus
   a constant.  Variable keys are Symbol ids for integer variables, and
   synthetic keys for uninterpreted (non-linear / boolean-valued) terms. *)
module IMap = Map.Make (Int)

type lin = { coeffs : Rat.t IMap.t; const : Rat.t }

let lconst c = { coeffs = IMap.empty; const = c }

let ladd a b =
  {
    coeffs =
      IMap.union
        (fun _ x y ->
          let s = Rat.add x y in
          if Rat.is_zero s then None else Some s)
        a.coeffs b.coeffs;
    const = Rat.add a.const b.const;
  }

let lscale k a =
  if Rat.is_zero k then lconst Rat.zero
  else { coeffs = IMap.map (Rat.mul k) a.coeffs; const = Rat.mul k a.const }

let lneg = lscale (Rat.of_int (-1))
let lsub a b = ladd a (lneg b)
let lvar key = { coeffs = IMap.singleton key Rat.one; const = Rat.zero }
let is_const l = IMap.is_empty l.coeffs

(* Uninterpreted-term keys live above the symbol id space.  The intern
   table is global (shared by concurrent solver queries), so it is guarded
   by a mutex.  Key values are first-come and thus schedule-dependent; they
   only order map traversals (pivot selection), which cannot change a
   decided verdict — elimination is complete on the linear fragment. *)
let ut_table : (int * int, int) Hashtbl.t = Hashtbl.create 64
let ut_next = ref 0
let ut_base = 1 lsl 40
let ut_lock = Mutex.create ()

let ut_key a b =
  let k = if a <= b then (a, b) else (b, a) in
  Mutex.protect ut_lock (fun () ->
      match Hashtbl.find_opt ut_table k with
      | Some id -> id
      | None ->
        let id = ut_base + !ut_next in
        incr ut_next;
        Hashtbl.add ut_table k id;
        id)

(* Boolean variables appearing in arithmetic position get their own key
   space (cannot happen with well-sorted input, but be safe). *)
let bool_key v = (1 lsl 41) + v

(* Convert an integer-sorted expression to a linear form. *)
let rec lin_of (e : Expr.t) : lin =
  match e.node with
  | Expr.Int n -> lconst (Rat.of_int n)
  | Expr.Var v ->
    if Symbol.sort v = Symbol.Int then lvar v else lvar (bool_key v)
  | Expr.Add (a, b) -> ladd (lin_of a) (lin_of b)
  | Expr.Sub (a, b) -> lsub (lin_of a) (lin_of b)
  | Expr.Neg a -> lneg (lin_of a)
  | Expr.Mul (a, b) -> (
    match (a.node, b.node) with
    | Expr.Int n, _ -> lscale (Rat.of_int n) (lin_of b)
    | _, Expr.Int n -> lscale (Rat.of_int n) (lin_of a)
    | _ -> lvar (ut_key a.id b.id))
  | _ ->
    (* Boolean-sorted subterm in arithmetic position: uninterpreted. *)
    lvar (ut_key e.id e.id)

(* Constraints in the normal form  e ⋈ 0. *)
type cmp = CEq | CNe | CLt | CLe
type cstr = { l : lin; op : cmp }

(* Turn an atom+polarity into a constraint, or None for pure boolean atoms
   (no theory content). *)
let cstr_of (atom : Expr.t) (polarity : bool) : cstr option =
  let mk a b op nop =
    let l = lsub (lin_of a) (lin_of b) in
    Some { l; op = (if polarity then op else nop) }
  in
  match atom.node with
  | Expr.Eq (a, b) ->
    if Expr.sort_of a = Symbol.Int || Expr.sort_of b = Symbol.Int then mk a b CEq CNe
    else None
  | Expr.Ne (a, b) ->
    if Expr.sort_of a = Symbol.Int || Expr.sort_of b = Symbol.Int then mk a b CNe CEq
    else None
  (* a < b  ≡  a - b < 0 ;  ¬(a < b) ≡ b ≤ a ≡ b - a ≤ 0 *)
  | Expr.Lt (a, b) -> if polarity then mk a b CLt CLt else mk b a CLe CLe
  | Expr.Le (a, b) -> if polarity then mk a b CLe CLe else mk b a CLt CLt
  | Expr.Var _ -> None
  | _ -> None

(* Check a constant constraint; Some verdict if decided. *)
let const_verdict c =
  let s = Rat.sign c.l.const in
  match c.op with
  | CEq -> Some (if s = 0 then Sat else Unsat)
  | CNe -> Some (if s <> 0 then Sat else Unsat)
  | CLt -> Some (if s < 0 then Sat else Unsat)
  | CLe -> Some (if s <= 0 then Sat else Unsat)

(* Gaussian elimination of equalities: repeatedly pick an equality with a
   variable, solve for that variable, substitute everywhere. *)
let substitute key repl l =
  match IMap.find_opt key l.coeffs with
  | None -> l
  | Some c ->
    let l' = { l with coeffs = IMap.remove key l.coeffs } in
    ladd l' (lscale c repl)

exception Conflict

let eliminate_equalities cstrs =
  let eqs, rest = List.partition (fun c -> c.op = CEq) cstrs in
  let rest = ref rest in
  let pending = ref eqs in
  let continue = ref true in
  while !continue do
    match !pending with
    | [] -> continue := false
    | c :: more ->
      pending := more;
      if is_const c.l then begin
        if not (Rat.is_zero c.l.const) then raise Conflict
      end
      else begin
        let key, coef = IMap.min_binding c.l.coeffs in
        (* key = repl  where  repl = -(rest of l) / coef *)
        let repl =
          lscale
            (Rat.div (Rat.of_int (-1)) coef)
            { c.l with coeffs = IMap.remove key c.l.coeffs }
        in
        let sub_c c' = { c' with l = substitute key repl c'.l } in
        pending := List.map sub_c !pending;
        rest := List.map sub_c !rest
      end
  done;
  !rest

module Metrics = Pinpoint_util.Metrics

(* Fourier–Motzkin on CLt/CLe constraints. *)
let fourier_motzkin deadline cstrs =
  (* Filter out decided constant constraints first. *)
  let act = ref [] in
  List.iter
    (fun c ->
      if is_const c.l then begin
        match const_verdict c with
        | Some Unsat -> raise Conflict
        | _ -> ()
      end
      else act := c :: !act)
    cstrs;
  let budget = ref max_derived in
  let unknown = ref false in
  let rec elim cs =
    match cs with
    | [] -> ()
    | _ ->
      (* Pick the variable minimising (#lower * #upper) pairings. *)
      let vars = Hashtbl.create 16 in
      List.iter
        (fun c ->
          IMap.iter
            (fun v coef ->
              let lo, hi = try Hashtbl.find vars v with Not_found -> (0, 0) in
              if Rat.sign coef < 0 then Hashtbl.replace vars v (lo + 1, hi)
              else Hashtbl.replace vars v (lo, hi + 1))
            c.l.coeffs)
        cs;
      let best = ref None in
      Hashtbl.iter
        (fun v (lo, hi) ->
          let cost = lo * hi in
          match !best with
          | None -> best := Some (v, cost)
          | Some (_, c0) -> if cost < c0 then best := Some (v, cost))
        vars;
      (match !best with
      | None -> ()
      | Some (v, _) ->
        let lowers, rest = List.partition (fun c -> match IMap.find_opt v c.l.coeffs with Some k -> Rat.sign k < 0 | None -> false) cs in
        let uppers, rest = List.partition (fun c -> match IMap.find_opt v c.l.coeffs with Some k -> Rat.sign k > 0 | None -> false) rest in
        let derived = ref [] in
        List.iter
          (fun lo ->
            List.iter
              (fun up ->
                decr budget;
                if !budget <= 0 then begin
                  unknown := true;
                  raise Exit
                end;
                if !budget land 63 = 0 then Metrics.check deadline;
                let kl = IMap.find v lo.l.coeffs and ku = IMap.find v up.l.coeffs in
                (* kl < 0, ku > 0: combine  ku*lo - kl*up  to cancel v. *)
                let l' = ladd (lscale ku lo.l) (lscale (Rat.neg kl) up.l) in
                let op = if lo.op = CLt || up.op = CLt then CLt else CLe in
                let c' = { l = l'; op } in
                if is_const c'.l then begin
                  match const_verdict c' with
                  | Some Unsat -> raise Conflict
                  | _ -> ()
                end
                else derived := c' :: !derived)
              uppers)
          lowers;
        elim (List.rev_append !derived rest))
  in
  (try elim !act with Exit -> ());
  !unknown

let check_ineqs deadline cstrs =
  try
    let rest = eliminate_equalities cstrs in
    (* Split CNe into strict branches, capped. *)
    let nes, ineqs = List.partition (fun c -> c.op = CNe) rest in
    let nes =
      (* Constant disequalities are decided immediately. *)
      List.filter
        (fun c ->
          if is_const c.l then begin
            if Rat.is_zero c.l.const then raise Conflict;
            false
          end
          else true)
        nes
    in
    let nes =
      let n = List.length nes in
      if n > max_ne_splits then begin
        let d = Domain.DLS.get dropped_key in
        d := !d + n;
        []
      end
      else nes
    in
    let rec branch nes acc_unknown chosen =
      match nes with
      | [] -> (
        (* All NE resolved; run FM on inequalities + chosen strict forms. *)
        try
          let unk = fourier_motzkin deadline (List.rev_append chosen ineqs) in
          Some (acc_unknown || unk)
        with Conflict -> None)
      | c :: rest -> (
        (* Try e < 0 then e > 0. *)
        let lt = { l = c.l; op = CLt } in
        let gt = { l = lneg c.l; op = CLt } in
        match branch rest acc_unknown (lt :: chosen) with
        | Some u -> Some u
        | None -> branch rest acc_unknown (gt :: chosen))
    in
    match branch nes false [] with
    | Some true -> Unknown
    | Some false -> Sat
    | None -> Unsat
  with Conflict -> Unsat

let check ?(deadline = Metrics.no_deadline) literals =
  let cstrs = List.filter_map (fun (a, p) -> cstr_of a p) literals in
  match cstrs with [] -> Sat | _ -> check_ineqs deadline cstrs
