(** Global symbol registry for SMT variables.

    A symbol is a small integer naming a logical variable together with its
    sort.  Symbols are allocated once and shared by reference everywhere
    (SEG vertices, points-to conditions, path conditions), which is what
    makes formula construction cheap. *)

type t = int
(** Symbol ids are dense non-negative integers. *)

type sort = Bool | Int

val fresh : string -> sort -> t
(** Register a new symbol.  The name is for printing only; distinct symbols
    may share a name. *)

val name : t -> string
val sort : t -> sort
val count : unit -> int

val pp : Format.formatter -> t -> unit
(** Prints ["name#id"]. *)

val pp_sort : Format.formatter -> sort -> unit
