(** Theory solver for conjunctions of linear-arithmetic literals.

    Given a conjunction of atom/polarity pairs produced by the DPLL core,
    decides satisfiability over the rationals:

    - atoms are normalised into linear constraints [e ⋈ 0] with
      [⋈ ∈ {=, ≠, <, ≤}] over {!Rat} coefficients;
    - non-linear terms (products of two variables) and boolean-sorted
      variables are treated as uninterpreted (a fresh integer variable per
      distinct term), which over-approximates satisfiability;
    - equalities are removed by Gaussian substitution;
    - disequalities are case-split into [<] / [>] (bounded by
      {!max_ne_splits}; excess disequalities are dropped, which again
      over-approximates satisfiability);
    - the remaining strict/non-strict inequalities are decided by
      Fourier–Motzkin elimination, with a budget on the number of derived
      constraints.

    The over-approximations mean the verdict [Sat] may be wrong for the
    integers (or for very large systems), but [Unsat] is always correct —
    the direction that matters for a soundy bug finder: we never discard a
    feasible bug path, we only occasionally keep an infeasible one. *)

type verdict = Sat | Unsat | Unknown

val max_ne_splits : int

val n_dropped : unit -> int
(** Cumulative count (per domain) of disequalities dropped because a
    conjunction exceeded {!max_ne_splits}.  Each drop over-approximates
    satisfiability; {!Solver} reads deltas around its theory calls and
    surfaces them as the [n_ne_dropped] stat. *)

val check :
  ?deadline:Pinpoint_util.Metrics.deadline ->
  (Expr.t * bool) list ->
  verdict
(** [check literals] decides the conjunction of the given atoms with their
    polarities.  Atoms must be boolean-sorted expressions (comparison nodes
    or variables).  The [deadline] is polled inside the Fourier–Motzkin
    elimination; on expiry {!Pinpoint_util.Metrics.Timeout} is raised. *)
