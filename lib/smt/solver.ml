module Metrics = Pinpoint_util.Metrics
module Resilience = Pinpoint_util.Resilience
module Obs = Pinpoint_obs.Obs
module Flight = Pinpoint_obs.Flight

type verdict = Sat | Unsat | Unknown

let verdict_name = function
  | Sat -> "sat"
  | Unsat -> "unsat"
  | Unknown -> "unknown"

type rung = Rung_full | Rung_halved | Rung_linear | Rung_gave_up | Rung_cached

let rung_name = function
  | Rung_full -> "full"
  | Rung_halved -> "halved"
  | Rung_linear -> "linear"
  | Rung_gave_up -> "gave-up"
  | Rung_cached -> "cached"

let pp_rung ppf r = Format.pp_print_string ppf (rung_name r)

type stats = {
  mutable n_queries : int;
  mutable n_sat : int;
  mutable n_unsat : int;
  mutable n_unknown : int;
  mutable n_theory_calls : int;
  mutable n_deadline_abort : int;
  mutable n_degraded : int;
  mutable n_cache_hits : int;
  mutable n_cache_misses : int;
  mutable n_subsume_hits : int;
  mutable n_core_shrink_calls : int;
  mutable n_propagations : int;
  mutable n_conflicts : int;
  mutable n_learned : int;
  mutable n_restarts : int;
  mutable n_ne_dropped : int;
  mutable n_carry_stored : int;
  mutable n_carry_seeded : int;
}

let zero () =
  {
    n_queries = 0;
    n_sat = 0;
    n_unsat = 0;
    n_unknown = 0;
    n_theory_calls = 0;
    n_deadline_abort = 0;
    n_degraded = 0;
    n_cache_hits = 0;
    n_cache_misses = 0;
    n_subsume_hits = 0;
    n_core_shrink_calls = 0;
    n_propagations = 0;
    n_conflicts = 0;
    n_learned = 0;
    n_restarts = 0;
    n_ne_dropped = 0;
    n_carry_stored = 0;
    n_carry_seeded = 0;
  }

(* Counters are domain-local: each worker accumulates into its own record
   (no contention, no torn updates), and a parallel client measures a task
   by [snapshot]/[diff] on the domain that ran it, then [merge]s the
   deltas in a deterministic order. *)
let stats_key : stats Domain.DLS.key = Domain.DLS.new_key zero
let stats () = Domain.DLS.get stats_key

(* The one enumeration of the record's fields; merge/diff/restore and the
   registry compatibility view all derive from it (Obs.Agg). *)
let fields =
  Obs.Agg.
    [
      field "n_queries" (fun s -> s.n_queries) (fun s v -> s.n_queries <- v);
      field "n_sat" (fun s -> s.n_sat) (fun s v -> s.n_sat <- v);
      field "n_unsat" (fun s -> s.n_unsat) (fun s v -> s.n_unsat <- v);
      field "n_unknown" (fun s -> s.n_unknown) (fun s v -> s.n_unknown <- v);
      field "n_theory_calls"
        (fun s -> s.n_theory_calls)
        (fun s v -> s.n_theory_calls <- v);
      field "n_deadline_abort"
        (fun s -> s.n_deadline_abort)
        (fun s v -> s.n_deadline_abort <- v);
      field "n_degraded" (fun s -> s.n_degraded) (fun s v -> s.n_degraded <- v);
      field "n_cache_hits"
        (fun s -> s.n_cache_hits)
        (fun s v -> s.n_cache_hits <- v);
      field "n_cache_misses"
        (fun s -> s.n_cache_misses)
        (fun s v -> s.n_cache_misses <- v);
      field "n_subsume_hits"
        (fun s -> s.n_subsume_hits)
        (fun s v -> s.n_subsume_hits <- v);
      field "n_core_shrink_calls"
        (fun s -> s.n_core_shrink_calls)
        (fun s v -> s.n_core_shrink_calls <- v);
      field "n_propagations"
        (fun s -> s.n_propagations)
        (fun s v -> s.n_propagations <- v);
      field "n_conflicts" (fun s -> s.n_conflicts) (fun s v -> s.n_conflicts <- v);
      field "n_learned" (fun s -> s.n_learned) (fun s v -> s.n_learned <- v);
      field "n_restarts" (fun s -> s.n_restarts) (fun s v -> s.n_restarts <- v);
      field "n_ne_dropped"
        (fun s -> s.n_ne_dropped)
        (fun s v -> s.n_ne_dropped <- v);
      field "n_carry_stored"
        (fun s -> s.n_carry_stored)
        (fun s v -> s.n_carry_stored <- v);
      field "n_carry_seeded"
        (fun s -> s.n_carry_seeded)
        (fun s v -> s.n_carry_seeded <- v);
    ]

let reset_stats () = Obs.Agg.copy_into fields ~into:(stats ()) (zero ())

let snapshot () =
  let s = stats () in
  { s with n_queries = s.n_queries }

let restore s' = Obs.Agg.copy_into fields ~into:(stats ()) s'

let merge a b =
  let r = zero () in
  Obs.Agg.add_into fields ~into:r a;
  Obs.Agg.add_into fields ~into:r b;
  r

let diff a b =
  let r = zero () in
  Obs.Agg.add_into fields ~into:r a;
  Obs.Agg.sub_into fields ~into:r b;
  r

let obs_publish s =
  Obs.Agg.publish ~prefix:"solver." fields s;
  (* The verdict cache's lifetime state (process-wide, not per-run deltas):
     entry count, capacity and clock evictions — the gauges a resident
     server's RSS bound is judged by. *)
  if Obs.metrics_on () then begin
    let q = Qcache.stats () in
    Obs.set_gauge (Obs.gauge "qcache.entries") (float_of_int q.Qcache.entries);
    Obs.set_gauge (Obs.gauge "qcache.capacity")
      (match q.Qcache.cap with Some c -> float_of_int c | None -> -1.0);
    Obs.set_gauge (Obs.gauge "qcache.evictions")
      (float_of_int q.Qcache.evictions);
    Obs.set_gauge (Obs.gauge "qcache.inserts") (float_of_int q.Qcache.inserts);
    Obs.set_gauge (Obs.gauge "qcache.probes") (float_of_int q.Qcache.probes);
    let c = Corecache.stats () in
    Obs.set_gauge (Obs.gauge "corecache.entries")
      (float_of_int c.Corecache.entries);
    Obs.set_gauge (Obs.gauge "corecache.probes") (float_of_int c.Corecache.probes);
    Obs.set_gauge (Obs.gauge "corecache.hits") (float_of_int c.Corecache.hits)
  end

let sat_or_unknown = function Sat | Unknown -> true | Unsat -> false

(* Tseitin encoding: returns the literal representing the expression and
   populates [sat] with defining clauses.  Atom expressions map to dedicated
   variables recorded in [atom_vars]. *)
let encode sat atom_vars (e : Expr.t) : int =
  let memo : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let rec enc (e : Expr.t) : int =
    match Hashtbl.find_opt memo e.id with
    | Some l -> l
    | None ->
      let l =
        match e.node with
        | Expr.True ->
          let v = Sat.new_var sat in
          Sat.add_clause sat [ v ];
          v
        | Expr.False ->
          let v = Sat.new_var sat in
          Sat.add_clause sat [ -v ];
          v
        | Expr.Not a -> -enc a
        | Expr.And (a, b) ->
          let la = enc a and lb = enc b in
          let v = Sat.new_var sat in
          Sat.add_clause sat [ -v; la ];
          Sat.add_clause sat [ -v; lb ];
          Sat.add_clause sat [ v; -la; -lb ];
          v
        | Expr.Or (a, b) ->
          let la = enc a and lb = enc b in
          let v = Sat.new_var sat in
          Sat.add_clause sat [ -v; la; lb ];
          Sat.add_clause sat [ v; -la ];
          Sat.add_clause sat [ v; -lb ];
          v
        | Expr.Var _ | Expr.Eq _ | Expr.Ne _ | Expr.Lt _ | Expr.Le _ -> (
          match Hashtbl.find_opt atom_vars e.id with
          | Some v -> v
          | None ->
            let v = Sat.new_var sat in
            Hashtbl.add atom_vars e.id v;
            v)
        | Expr.Int _ | Expr.Add _ | Expr.Sub _ | Expr.Mul _ | Expr.Neg _ ->
          invalid_arg "Solver.check: arithmetic term used as a formula"
      in
      Hashtbl.add memo e.id l;
      l
  in
  enc e

(* Persistent per-query solver state: the Tseitin encoding is built once
   and the root literal is passed to {!Sat.solve} as an *assumption*, not
   a unit clause, so the degradation ladder can re-enter the same
   instance (keeping learned clauses, saved phases and theory blocking
   clauses) with a different budget instead of rebuilding the CNF. *)
type query = {
  q_sat : Sat.t;
  q_root : int;
  q_atom_vars : (int, int) Hashtbl.t; (* atom expr id -> SAT var *)
  q_var_atom : (int, Expr.t) Hashtbl.t; (* SAT var -> atom expr *)
  mutable q_lemmas : (Expr.t * bool) list list;
      (* theory blocking cores learned while solving this query, newest
         first: each is an atom/polarity assignment the theory refuted, so
         its negation (the blocking clause) is valid in every query *)
}

let make_query (e : Expr.t) : query =
  let sat = Sat.create () in
  let atom_vars : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let root = encode sat atom_vars e in
  (* Map SAT var -> atom expression for model extraction. *)
  let atoms = Expr.atoms e in
  let var_atom : (int, Expr.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun a ->
      match Hashtbl.find_opt atom_vars a.Expr.id with
      | Some v -> Hashtbl.add var_atom v a
      | None -> ())
    atoms;
  {
    q_sat = sat;
    q_root = root;
    q_atom_vars = atom_vars;
    q_var_atom = var_atom;
    q_lemmas = [];
  }

(* ------------------------------------------------------------------ *)
(* Per-source solver carryover (DESIGN.md §4.17).

   Queries from one source share a prefix: candidate k+1's condition is
   candidate k's plus a sink conjunct or two.  The theory blocking
   clauses the lazy loop learns while refuting propositional models are
   {e theory lemmas} — "this atom assignment is arithmetically
   inconsistent" — valid for any formula over the same atoms, not just
   the query that learned them.  A [Carry.t] keeps a bounded pouch of
   them per source; when the next query from that source is encoded, any
   lemma whose atoms all occur in the new query is re-seeded as a clause
   before the first SAT call, so the solver never revisits the refuted
   assignment (strictly fewer propagations, measured by the bench's
   carryover leg).  Seeding a valid clause cannot change a verdict, so
   reports are identical with carryover on or off. *)

module Carry = struct
  type t = { mutable lemmas : (Expr.t * bool) list list }

  let max_lemmas = 32
  let max_lits = 12

  let create () = { lemmas = [] }

  let truncate n l =
    let rec go n = function
      | x :: tl when n > 0 -> x :: go (n - 1) tl
      | _ -> []
    in
    go n l

  (* Harvest the blocking cores a finished query learned. *)
  let store (c : t) (q : query) =
    let st = stats () in
    List.iter
      (fun lemma ->
        if List.length lemma <= max_lits then begin
          c.lemmas <- lemma :: c.lemmas;
          st.n_carry_stored <- st.n_carry_stored + 1
        end)
      (List.rev q.q_lemmas);
    c.lemmas <- truncate max_lemmas c.lemmas

  (* Re-seed every applicable lemma into a freshly encoded query: the
     lemma's atoms must all be atoms of the new query (mapped through its
     own Tseitin variables). *)
  let seed (c : t) (q : query) =
    let st = stats () in
    List.iter
      (fun lemma ->
        let vars =
          List.map
            (fun ((atom : Expr.t), b) ->
              match Hashtbl.find_opt q.q_atom_vars atom.Expr.id with
              | Some v -> Some (if b then -v else v)
              | None -> None)
            lemma
        in
        if List.for_all Option.is_some vars then begin
          Sat.add_clause q.q_sat (List.filter_map Fun.id vars);
          st.n_carry_seeded <- st.n_carry_seeded + 1
        end)
      c.lemmas
end

(* Both wrappers below fold the callee's effort counters into the
   domain-local stats even when the call escapes by [Metrics.Timeout]:
   a deadline abort must not make the work it burned disappear from the
   profile. *)

let solve_counted ~budget ~deadline q =
  let st = stats () in
  let c0 = Sat.counts q.q_sat in
  let fin () =
    let c1 = Sat.counts q.q_sat in
    st.n_propagations <-
      st.n_propagations + (c1.Sat.propagations - c0.Sat.propagations);
    st.n_conflicts <- st.n_conflicts + (c1.Sat.conflicts - c0.Sat.conflicts);
    st.n_learned <- st.n_learned + (c1.Sat.learned - c0.Sat.learned);
    st.n_restarts <- st.n_restarts + (c1.Sat.restarts - c0.Sat.restarts)
  in
  match Sat.solve ~budget ~assumptions:[ q.q_root ] ~deadline q.q_sat with
  | r ->
    fin ();
    r
  | exception exn ->
    fin ();
    raise exn

let theory_check ~deadline literals =
  let st = stats () in
  let d0 = Theory.n_dropped () in
  let fin () = st.n_ne_dropped <- st.n_ne_dropped + (Theory.n_dropped () - d0) in
  match Theory.check ~deadline literals with
  | r ->
    fin ();
    r
  | exception exn ->
    fin ();
    raise exn

(* The lazy-SMT core, verdict-stats-free so the degradation ladder can run
   it more than once per query.  Raises [Metrics.Timeout] when the deadline
   expires (polled before the linear fast path, at every refutation round,
   inside the CDCL propagation loop and inside the theory solver).

   [query] memoises the encoded instance across calls: a re-run (rung
   escalation) resumes the same solver state under assumptions and pays
   only the delta. *)
let check_raw ~max_iters ~conflicts ~deadline ?query (e : Expr.t) :
    verdict * (Expr.t * bool) list =
  if Expr.is_true e then (Sat, [])
  else if Expr.is_false e then (Unsat, [])
  else begin
    Metrics.check deadline;
    (* Fast path: the linear-time contradiction check. *)
    match Linear_solver.check e with
    | Linear_solver.Unsat -> (Unsat, [])
    | Linear_solver.Maybe ->
      let q = match query with Some get -> get () | None -> make_query e in
      let sat_model : (Expr.t * bool) list ref = ref [] in
      let rec loop iter =
        if iter >= max_iters then Unknown
        else begin
          Metrics.check deadline;
          match solve_counted ~budget:conflicts ~deadline q with
          | None -> Unknown
          | Some Sat.Unsat -> Unsat
          | Some (Sat.Sat model) -> (
            let literals =
              Hashtbl.fold
                (fun v atom acc -> (atom, model.(v)) :: acc)
                q.q_var_atom []
            in
            let st = stats () in
            st.n_theory_calls <- st.n_theory_calls + 1;
            match theory_check ~deadline literals with
            | Theory.Sat ->
              sat_model := literals;
              Sat
            | Theory.Unknown -> Unknown
            | Theory.Unsat ->
              (* Shrink to an (approximate) unsat core by deletion, so the
                 blocking clause prunes as much of the search as possible. *)
              let theory_lits =
                List.filter
                  (fun (atom, _) ->
                    match atom.Expr.node with
                    | Expr.Eq _ | Expr.Ne _ | Expr.Lt _ | Expr.Le _ -> true
                    | _ -> false)
                  literals
              in
              let st = stats () in
              st.n_core_shrink_calls <- st.n_core_shrink_calls + 1;
              (* Deletion filter: one pass per candidate, flagging whether
                 it was actually present instead of recomputing two list
                 lengths (candidates already deleted in earlier rounds are
                 skipped without a theory call). *)
              let core = ref theory_lits in
              List.iter
                (fun lit ->
                  let removed = ref false in
                  let without =
                    List.filter
                      (fun l ->
                        if l == lit then begin
                          removed := true;
                          false
                        end
                        else true)
                      !core
                  in
                  if !removed && theory_check ~deadline without = Theory.Unsat
                  then core := without)
                theory_lits;
              let blocking =
                List.map
                  (fun (atom, b) ->
                    let v = Hashtbl.find q.q_atom_vars atom.Expr.id in
                    if b then -v else v)
                  !core
              in
              if blocking = [] then Unsat
              else begin
                (* The blocking clause persists in the instance: later
                   iterations — and later rungs resuming this query —
                   never revisit the refuted propositional model.  The
                   refuted core is also kept on the query record, so
                   per-source carryover can re-seed it into the next
                   query over the same atoms. *)
                Sat.add_clause q.q_sat blocking;
                q.q_lemmas <- !core :: q.q_lemmas;
                loop (iter + 1)
              end)
        end
      in
      let v = loop 0 in
      (v, if v = Sat then !sat_model else [])
  end

(* ------------------------------------------------------------------ *)
(* Unsat-core subsumption (DESIGN.md §4.17): after a full-rung Unsat,
   shrink the formula's top-level conjunct set by deletion to a
   still-Unsat subset and store it in {!Corecache}.  Each deletion step
   re-checks the remainder — linear fast path first, then (for small
   cores) a tightly budgeted full check — so the invariant "the current
   core is Unsat" holds at every step, and an abort (deadline) just
   stores the larger, still-valid core.  Returns the stored core size
   (0 = nothing stored), surfaced in the profiler row. *)

let corecache_max_conjuncts = 128
let corecache_full_shrink_max = 24

let corecache_store ~deadline (e : Expr.t) : int =
  if not (Corecache.enabled ()) then 0
  else begin
    let conjs = Corecache.conjuncts e in
    let n = List.length conjs in
    if n < 2 || n > corecache_max_conjuncts then 0
    else begin
      let d = Metrics.min_deadline deadline (Metrics.deadline_after 0.5) in
      let still_unsat f =
        Corecache.note_shrink_check ();
        match Linear_solver.check f with
        | Linear_solver.Unsat -> true
        | Linear_solver.Maybe ->
          n <= corecache_full_shrink_max
          && fst (check_raw ~max_iters:8 ~conflicts:128 ~deadline:d f) = Unsat
      in
      let core = ref conjs in
      (try
         List.iter
           (fun c ->
             if List.length !core > 1 then begin
               let without = List.filter (fun x -> not (x == c)) !core in
               if still_unsat (Expr.conj_balanced without) then core := without
             end)
           conjs
       with Metrics.Timeout -> ());
      Corecache.store !core;
      List.length !core
    end
  end

let record_verdict v =
  let st = stats () in
  match v with
  | Sat -> st.n_sat <- st.n_sat + 1
  | Unsat -> st.n_unsat <- st.n_unsat + 1
  | Unknown -> st.n_unknown <- st.n_unknown + 1

let cached_verdict = function
  | Qcache.Cached_sat m -> (Sat, m)
  | Qcache.Cached_unsat -> (Unsat, [])

(* Only definitive full-strength verdicts go in: [Unknown] is a budget
   artefact of this particular call, not a property of the formula. *)
let cache_store e v m =
  match v with
  | Sat -> Qcache.add e (Qcache.Cached_sat m)
  | Unsat -> Qcache.add e Qcache.Cached_unsat
  | Unknown -> ()

let check_with_model ?(max_iters = 400) ?(conflict_budget = Sat.default_budget)
    ?(deadline = Metrics.no_deadline) (e : Expr.t) :
    verdict * (Expr.t * bool) list =
  let st = stats () in
  st.n_queries <- st.n_queries + 1;
  match Qcache.find e with
  | Some entry ->
    st.n_cache_hits <- st.n_cache_hits + 1;
    let v, m = cached_verdict entry in
    record_verdict v;
    (v, m)
  | None ->
    if Qcache.enabled () then st.n_cache_misses <- st.n_cache_misses + 1;
    if Corecache.probe e then begin
      (* The conjunct set contains a stored unsat core: Unsat without
         running CDCL (a conjunction containing an unsat core is unsat). *)
      st.n_subsume_hits <- st.n_subsume_hits + 1;
      record_verdict Unsat;
      (Unsat, [])
    end
    else begin
      let v, m = check_raw ~max_iters ~conflicts:conflict_budget ~deadline e in
      record_verdict v;
      cache_store e v m;
      if v = Unsat then ignore (corecache_store ~deadline e);
      (v, m)
    end

let check ?max_iters ?conflict_budget ?deadline e =
  fst (check_with_model ?max_iters ?conflict_budget ?deadline e)

(* ------------------------------------------------------------------ *)
(* Degradation ladder (robustness layer): full lazy-SMT -> retry with
   halved budgets -> linear-time contradiction solver -> keep-the-report
   (Unknown).  Every rung is sound in the direction that matters to a
   soundy client: [Unsat] is always a real refutation, so stepping down
   can never lose a definitely-feasible report — at worst a query decides
   [Unknown] and the report survives. *)

(* Per-query observability: latency histogram + a profiler record tagging
   the query with its source/sink subject, rung and atom count, and (when
   tracing) an "smt.query" span on the running domain's track.  When obs
   is off this is two monotonic-clock reads and three branches.  The
   histogram is looked up by name each time (not cached in a [lazy]):
   [Obs.reset] replaces the registry's entries, and a cached handle would
   go on feeding an orphan. *)
let profile_query ~subject ~qt0 ~conf0 ~shrink0 ~core_size e
    ((v, _, rung) as result) =
  let flight = Flight.enabled () in
  if Obs.metrics_on () || flight then begin
    let rung_s = rung_name rung and verdict_s = verdict_name v in
    (* Flight is independent of the obs level: rung decisions land in the
       post-mortem ring even at Off.  The row carries the ambient request
       id implicitly (both recorders read it from the domain). *)
    if flight then
      Flight.record ~kind:"rung" ~detail:(subject ^ " " ^ verdict_s) rung_s;
    if Obs.metrics_on () then begin
      let latency_s = Metrics.now_mono () -. qt0 in
      let atoms = List.length (Expr.atoms e) in
      let conflicts = (stats ()).n_conflicts - conf0 in
      let shrinks = (stats ()).n_core_shrink_calls - shrink0 in
      Obs.record_query ~subject ~rung:rung_s ~verdict:verdict_s ~atoms
        ~conflicts ~shrinks ~core:!core_size ~latency_s ();
      Obs.observe (Obs.histogram "smt.query.latency_s") latency_s;
      if Obs.tracing_on () then
        Obs.end_span
          ~attrs:
            [
              ("subject", subject);
              ("rung", rung_s);
              ("verdict", verdict_s);
              ("atoms", string_of_int atoms);
            ]
          ()
    end
  end;
  result

let check_degrading ?(max_iters = 400) ?(budget_s = infinity)
    ?(conflict_budget = Sat.default_budget) ?(deadline = Metrics.no_deadline)
    ?log ?carry ?(subject = "query") (e : Expr.t) :
    verdict * (Expr.t * bool) list * rung =
  let qt0 = Metrics.now_mono () in
  if Obs.tracing_on () then Obs.begin_span "smt.query";
  let st = stats () in
  st.n_queries <- st.n_queries + 1;
  let conf0 = st.n_conflicts in
  let shrink0 = st.n_core_shrink_calls in
  let core_size = ref 0 in
  let t0 = Metrics.now () in
  let incident detail fallback =
    match log with
    | Some log ->
      Resilience.record log
        {
          Resilience.phase = Resilience.Solver_query;
          subject;
          detail;
          fallback;
          elapsed_s = Metrics.now () -. t0;
        }
    | None -> ()
  in
  let fault =
    if Resilience.Inject.enabled () then Resilience.Inject.solver_fault ()
    else None
  in
  (* The encoded instance is shared across rungs: built lazily on the
     first rung that needs it, re-entered (learned clauses, saved phases
     and theory blocking clauses intact) by any later rung. *)
  let memo_query = ref None in
  let get_query () =
    match !memo_query with
    | Some q -> q
    | None ->
      let q = make_query e in
      (* Re-seed theory lemmas learned on earlier queries from the same
         source whose atoms all recur here (Carry).  The lemmas are
         theory-valid, so seeding can only prune the search — verdicts
         are unchanged, propagation counts drop. *)
      (match carry with Some c -> Carry.seed c q | None -> ());
      memo_query := Some q;
      q
  in
  (* Run one rung behind an exception barrier; [sabotage] only applies to
     the first (full) rung. *)
  let try_rung ~iters ~conflicts ~budget ~sabotage =
    let d = Metrics.min_deadline deadline (Metrics.deadline_after budget) in
    match
      (match sabotage with
       | Some Resilience.Inject.Crash -> raise Resilience.Injected_crash
       | Some Resilience.Inject.Hang ->
         Metrics.wait_until d;
         raise Metrics.Timeout
       | Some Resilience.Inject.Unknown_verdict | None -> ());
      check_raw ~max_iters:iters ~conflicts ~deadline:d ~query:get_query e
    with
    | v, m -> Ok (v, m)
    | exception Metrics.Timeout ->
      st.n_deadline_abort <- st.n_deadline_abort + 1;
      Error
        (match sabotage with
        | Some Resilience.Inject.Hang -> "injected: hang (deadline exhausted)"
        | _ -> "deadline exhausted")
    | exception Out_of_memory -> raise Out_of_memory
    | exception exn -> Error (Printexc.to_string exn)
  in
  let finish rung v m =
    if rung <> Rung_full then st.n_degraded <- st.n_degraded + 1;
    record_verdict v;
    (v, m, rung)
  in
  let run_ladder sabotage =
    match
      try_rung ~iters:max_iters ~conflicts:conflict_budget ~budget:budget_s
        ~sabotage
    with
    | Ok (v, m) ->
      (* Only an unsabotaged full-rung verdict is cacheable; degraded-rung
         answers may be weaker than what the full solver would say.
         (Crash/Hang sabotage never reaches [Ok] on the first rung, so the
         guard is for documentation as much as safety.) *)
      if sabotage = None then begin
        cache_store e v m;
        (* A full-rung refutation also yields a reusable unsat core:
           shrink the conjunct set by deletion and file it for
           subsumption probes by later, similar queries. *)
        if v = Unsat then core_size := corecache_store ~deadline e
      end;
      finish Rung_full v m
    | Error detail1 -> (
      incident detail1 "resume with halved budgets";
      (* The halved rung halves every budget axis consistently — loop
         iterations, wall-clock and the per-call conflict budget — and
         re-enters the same solver state under assumptions, so it pays
         only the delta beyond what the full rung already learned. *)
      match
        try_rung
          ~iters:(max 1 (max_iters / 2))
          ~conflicts:(max 1 (conflict_budget / 2))
          ~budget:(budget_s /. 2.0) ~sabotage:None
      with
      | Ok (v, m) -> finish Rung_halved v m
      | Error detail2 -> (
        incident detail2 "linear-time contradiction solver";
        match Linear_solver.check e with
        | Linear_solver.Unsat -> finish Rung_linear Unsat []
        | Linear_solver.Maybe -> finish Rung_gave_up Unknown []))
  in
  (* The fault is drawn before the cache is consulted (draw-first), and a
     sabotaged query bypasses the cache entirely — no read, no write.  This
     keeps the per-subject injection stream aligned with the query sequence
     (one draw per query, hit or miss), so incident fingerprints stay
     identical across [--jobs] levels even though which domain populates a
     given cache entry is racy. *)
  let result =
    match fault with
    | Some Resilience.Inject.Unknown_verdict ->
      incident "injected: unknown-verdict" "kept the report (Unknown)";
      finish Rung_gave_up Unknown []
    | Some (Resilience.Inject.Crash | Resilience.Inject.Hang) ->
      run_ladder fault
    | None -> (
      match Qcache.find e with
      | Some entry ->
        st.n_cache_hits <- st.n_cache_hits + 1;
        let v, m = cached_verdict entry in
        record_verdict v;
        (v, m, Rung_cached)
      | None ->
        if Qcache.enabled () then st.n_cache_misses <- st.n_cache_misses + 1;
        (* Subsumption probe: if the conjunct set contains a stored unsat
           core, the query is Unsat without launching CDCL.  The probe sits
           after the fault draw (draw-first) so a hit consumes exactly the
           same injection draw as a full solve would — incident
           fingerprints stay aligned with the cache on or off. *)
        if Corecache.probe e then begin
          st.n_subsume_hits <- st.n_subsume_hits + 1;
          record_verdict Unsat;
          (Unsat, [], Rung_cached)
        end
        else run_ladder None)
  in
  (* Harvest whatever theory lemmas this query learned into the caller's
     per-source pouch (if any) for re-seeding into the next query. *)
  (match (carry, !memo_query) with
  | Some c, Some q -> Carry.store c q
  | _ -> ());
  profile_query ~subject ~qt0 ~conf0 ~shrink0 ~core_size e result
