type verdict = Sat | Unsat | Unknown

type stats = {
  mutable n_queries : int;
  mutable n_sat : int;
  mutable n_unsat : int;
  mutable n_unknown : int;
  mutable n_theory_calls : int;
}

let stats = { n_queries = 0; n_sat = 0; n_unsat = 0; n_unknown = 0; n_theory_calls = 0 }

let reset_stats () =
  stats.n_queries <- 0;
  stats.n_sat <- 0;
  stats.n_unsat <- 0;
  stats.n_unknown <- 0;
  stats.n_theory_calls <- 0

let sat_or_unknown = function Sat | Unknown -> true | Unsat -> false

(* Tseitin encoding: returns the literal representing the expression and
   populates [sat] with defining clauses.  Atom expressions map to dedicated
   variables recorded in [atom_vars]. *)
let encode sat atom_vars (e : Expr.t) : int =
  let memo : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let rec enc (e : Expr.t) : int =
    match Hashtbl.find_opt memo e.id with
    | Some l -> l
    | None ->
      let l =
        match e.node with
        | Expr.True ->
          let v = Sat.new_var sat in
          Sat.add_clause sat [ v ];
          v
        | Expr.False ->
          let v = Sat.new_var sat in
          Sat.add_clause sat [ -v ];
          v
        | Expr.Not a -> -enc a
        | Expr.And (a, b) ->
          let la = enc a and lb = enc b in
          let v = Sat.new_var sat in
          Sat.add_clause sat [ -v; la ];
          Sat.add_clause sat [ -v; lb ];
          Sat.add_clause sat [ v; -la; -lb ];
          v
        | Expr.Or (a, b) ->
          let la = enc a and lb = enc b in
          let v = Sat.new_var sat in
          Sat.add_clause sat [ -v; la; lb ];
          Sat.add_clause sat [ v; -la ];
          Sat.add_clause sat [ v; -lb ];
          v
        | Expr.Var _ | Expr.Eq _ | Expr.Ne _ | Expr.Lt _ | Expr.Le _ -> (
          match Hashtbl.find_opt atom_vars e.id with
          | Some v -> v
          | None ->
            let v = Sat.new_var sat in
            Hashtbl.add atom_vars e.id v;
            v)
        | Expr.Int _ | Expr.Add _ | Expr.Sub _ | Expr.Mul _ | Expr.Neg _ ->
          invalid_arg "Solver.check: arithmetic term used as a formula"
      in
      Hashtbl.add memo e.id l;
      l
  in
  enc e

let check_with_model ?(max_iters = 400) (e : Expr.t) :
    verdict * (Expr.t * bool) list =
  stats.n_queries <- stats.n_queries + 1;
  let sat_model : (Expr.t * bool) list ref = ref [] in
  let record v =
    (match v with
    | Sat -> stats.n_sat <- stats.n_sat + 1
    | Unsat -> stats.n_unsat <- stats.n_unsat + 1
    | Unknown -> stats.n_unknown <- stats.n_unknown + 1);
    (v, if v = Sat then !sat_model else [])
  in
  if Expr.is_true e then record Sat
  else if Expr.is_false e then record Unsat
  else begin
    (* Fast path: the linear-time contradiction check. *)
    match Linear_solver.check e with
    | Linear_solver.Unsat -> record Unsat
    | Linear_solver.Maybe ->
      let sat = Sat.create () in
      let atom_vars : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let root = encode sat atom_vars e in
      Sat.add_clause sat [ root ];
      (* Map SAT var -> atom expression for model extraction. *)
      let atoms = Expr.atoms e in
      let var_atom : (int, Expr.t) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun a ->
          match Hashtbl.find_opt atom_vars a.Expr.id with
          | Some v -> Hashtbl.add var_atom v a
          | None -> ())
        atoms;
      let rec loop iter =
        if iter >= max_iters then Unknown
        else
          match Sat.solve sat with
          | None -> Unknown
          | Some Sat.Unsat -> Unsat
          | Some (Sat.Sat model) -> (
            let literals =
              Hashtbl.fold
                (fun v atom acc -> (atom, model.(v)) :: acc)
                var_atom []
            in
            stats.n_theory_calls <- stats.n_theory_calls + 1;
            match Theory.check literals with
            | Theory.Sat ->
              sat_model := literals;
              Sat
            | Theory.Unknown -> Unknown
            | Theory.Unsat ->
              (* Shrink to an (approximate) unsat core by deletion, so the
                 blocking clause prunes as much of the search as possible. *)
              let theory_lits =
                List.filter
                  (fun (atom, _) ->
                    match atom.Expr.node with
                    | Expr.Eq _ | Expr.Ne _ | Expr.Lt _ | Expr.Le _ -> true
                    | _ -> false)
                  literals
              in
              let core = ref theory_lits in
              List.iter
                (fun lit ->
                  let without = List.filter (fun l -> l != lit) !core in
                  if
                    List.length without < List.length !core
                    && Theory.check without = Theory.Unsat
                  then core := without)
                theory_lits;
              let blocking =
                List.map
                  (fun (atom, b) ->
                    let v = Hashtbl.find atom_vars atom.Expr.id in
                    if b then -v else v)
                  !core
              in
              if blocking = [] then Unsat
              else begin
                Sat.add_clause sat blocking;
                loop (iter + 1)
              end)
      in
      record (loop 0)
  end


let check ?max_iters e = fst (check_with_model ?max_iters e)
