type t = { id : int; skey : int; node : node }

and node =
  | True
  | False
  | Int of int
  | Var of Symbol.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Eq of t * t
  | Ne of t * t
  | Lt of t * t
  | Le of t * t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Neg of t

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash a = a.id

(* Structural keys used for hash-consing: children are identified by id. *)
type key =
  | KTrue
  | KFalse
  | KInt of int
  | KVar of int
  | KNot of int
  | KAnd of int * int
  | KOr of int * int
  | KEq of int * int
  | KNe of int * int
  | KLt of int * int
  | KLe of int * int
  | KAdd of int * int
  | KSub of int * int
  | KMul of int * int
  | KNeg of int

let key_of = function
  | True -> KTrue
  | False -> KFalse
  | Int n -> KInt n
  | Var v -> KVar v
  | Not a -> KNot a.id
  | And (a, b) -> KAnd (a.id, b.id)
  | Or (a, b) -> KOr (a.id, b.id)
  | Eq (a, b) -> KEq (a.id, b.id)
  | Ne (a, b) -> KNe (a.id, b.id)
  | Lt (a, b) -> KLt (a.id, b.id)
  | Le (a, b) -> KLe (a.id, b.id)
  | Add (a, b) -> KAdd (a.id, b.id)
  | Sub (a, b) -> KSub (a.id, b.id)
  | Mul (a, b) -> KMul (a.id, b.id)
  | Neg a -> KNeg a.id

(* Structural rank of a node: a hash over node kinds, constants, symbol
   names/sorts and children's ranks — everything {e except} allocation
   order.  Node ids are allocation-ordered and thus schedule-dependent once
   several domains intern concurrently, so formula structure must never
   depend on them; [ordered] below canonicalises commutative operands by
   this rank instead, which is identical on every run and at every [--jobs]
   level. *)
let skey_of = function
  | True -> Hashtbl.hash 0
  | False -> Hashtbl.hash 1
  | Int n -> Hashtbl.hash (2, n)
  | Var v -> Hashtbl.hash (3, Symbol.name v, Symbol.sort v)
  | Not a -> Hashtbl.hash (4, a.skey)
  | And (a, b) -> Hashtbl.hash (5, a.skey, b.skey)
  | Or (a, b) -> Hashtbl.hash (6, a.skey, b.skey)
  | Eq (a, b) -> Hashtbl.hash (7, a.skey, b.skey)
  | Ne (a, b) -> Hashtbl.hash (8, a.skey, b.skey)
  | Lt (a, b) -> Hashtbl.hash (9, a.skey, b.skey)
  | Le (a, b) -> Hashtbl.hash (10, a.skey, b.skey)
  | Add (a, b) -> Hashtbl.hash (11, a.skey, b.skey)
  | Sub (a, b) -> Hashtbl.hash (12, a.skey, b.skey)
  | Mul (a, b) -> Hashtbl.hash (13, a.skey, b.skey)
  | Neg a -> Hashtbl.hash (14, a.skey)

(* The hash-cons table is global and shared by every domain, so interning
   is serialised by a mutex.  Ids are used only for equality, hashing and
   memo keys — never for structure (see [skey_of] above).

   The table holds its elements weakly: a formula nothing else references
   — e.g. one whose owning artifacts were all evicted by the disk-resident
   store — is collected, and a later re-intern of the same structure
   builds a fresh, structurally identical node.  Equality and hashing go
   through [key_of], which identifies children by id, so only candidates
   whose children are already canonical can merge (the hash-consing
   invariant), and both are stable for as long as an element is alive
   (children are strongly referenced by their parent).  Ids are never
   reused — the counter only advances on a real insertion — so stale
   id-keyed memo entries can dangle but never alias. *)
module Weak_tbl = Weak.Make (struct
  type nonrec t = t

  let equal a b = key_of a.node = key_of b.node
  let hash e = Hashtbl.hash (key_of e.node)
end)

let table = Weak_tbl.create 4096
let counter = ref 0
let lock = Mutex.create ()

let make node =
  Mutex.protect lock (fun () ->
      let candidate = { id = !counter; skey = skey_of node; node } in
      let e = Weak_tbl.merge table candidate in
      if e == candidate then incr counter;
      e)

(* Raw interning entry for deserializers: a [node] whose children are
   already interned re-enters the hash-cons table and comes back as
   *the* canonical expression — physically equal to the original when
   it still exists.  Callers must respect the commutative-ordering
   invariant themselves (store nodes that were built by the smart
   constructors already do). *)
let of_node = make
let n_created () = !counter
let tru = make True
let fls = make False
let bool b = if b then tru else fls
let int n = make (Int n)
let var v = make (Var v)
let is_true e = e.node = True
let is_false e = e.node = False

(* Commutative operators order their operands by structural rank so that
   [a op b] and [b op a] share a node.  On a rank tie (hash collision, or
   same-named symbols) construction order is kept, which is itself
   deterministic — so the canonical form is identical on every run and at
   every [--jobs] level, unlike the previous id-based ordering. *)
let ordered a b = if a.skey <= b.skey then (a, b) else (b, a)

let sort_of e =
  match e.node with
  | True | False | Not _ | And _ | Or _ | Eq _ | Ne _ | Lt _ | Le _ -> Symbol.Bool
  | Int _ | Add _ | Sub _ | Mul _ | Neg _ -> Symbol.Int
  | Var v -> Symbol.sort v

let is_bool e = sort_of e = Symbol.Bool

let rec not_ e =
  match e.node with
  | True -> fls
  | False -> tru
  | Not a -> a
  | Lt (a, b) -> le b a
  | Le (a, b) -> lt b a
  | Eq (a, b) -> ne a b
  | Ne (a, b) -> eq a b
  | _ -> make (Not e)

and and_ a b =
  if is_false a || is_false b then fls
  else if is_true a then b
  else if is_true b then a
  else if equal a b then a
  else if (match a.node with Not x -> equal x b | _ -> false) then fls
  else if (match b.node with Not x -> equal x a | _ -> false) then fls
  else
    let a, b = ordered a b in
    make (And (a, b))

and or_ a b =
  if is_true a || is_true b then tru
  else if is_false a then b
  else if is_false b then a
  else if equal a b then a
  else if (match a.node with Not x -> equal x b | _ -> false) then tru
  else if (match b.node with Not x -> equal x a | _ -> false) then tru
  else
    (* Absorption: a ∨ (a ∧ c) = a. *)
    match (a.node, b.node) with
    | _, And (x, y) when equal a x || equal a y -> a
    | And (x, y), _ when equal b x || equal b y -> b
    (* Factoring: (p ∧ q) ∨ (p ∧ r) = p ∧ (q ∨ r); keeps φ gates compact. *)
    | And (x1, y1), And (x2, y2) when equal x1 x2 -> and_ x1 (or_ y1 y2)
    | And (x1, y1), And (x2, y2) when equal x1 y2 -> and_ x1 (or_ y1 x2)
    | And (x1, y1), And (x2, y2) when equal y1 x2 -> and_ y1 (or_ x1 y2)
    | And (x1, y1), And (x2, y2) when equal y1 y2 -> and_ y1 (or_ x1 x2)
    | _ ->
      let a, b = ordered a b in
      make (Or (a, b))

and eq a b =
  if equal a b then tru
  else
    match (a.node, b.node) with
    | Int x, Int y -> bool (x = y)
    | True, True | False, False -> tru
    | True, False | False, True -> fls
    | _ when is_bool a && is_bool b ->
      (* Boolean equality is an iff, so the SAT core can reason about it
         (a ≡ b  ⇔  (a ∧ b) ∨ (¬a ∧ ¬b)). *)
      or_ (and_ a b) (and_ (not_ a) (not_ b))
    | _ ->
      let a, b = ordered a b in
      make (Eq (a, b))

and ne a b =
  if equal a b then fls
  else
    match (a.node, b.node) with
    | Int x, Int y -> bool (x <> y)
    | True, True | False, False -> fls
    | True, False | False, True -> tru
    | _ when is_bool a && is_bool b ->
      or_ (and_ a (not_ b)) (and_ (not_ a) b)
    | _ ->
      let a, b = ordered a b in
      make (Ne (a, b))

and lt a b =
  if equal a b then fls
  else
    match (a.node, b.node) with
    | Int x, Int y -> bool (x < y)
    | _ -> make (Lt (a, b))

and le a b =
  if equal a b then tru
  else
    match (a.node, b.node) with
    | Int x, Int y -> bool (x <= y)
    | _ -> make (Le (a, b))

let gt a b = lt b a
let ge a b = le b a
let implies a b = or_ (not_ a) b
let conj l = List.fold_left and_ tru l
let disj l = List.fold_left or_ fls l

(* Balanced n-ary connectives.  The left folds above build a left-deep
   comb, so the same conjunct set reached in a different order never shares
   a node with a previous build — [ordered] only canonicalises a single
   binary application.  Sorting the (deduplicated) operands by structural
   rank and folding them as a tree yields one canonical shape per operand
   multiset: schedule-independent (skey never looks at allocation order;
   ties keep list order, which callers derive from program order) and
   logarithmic depth, which also keeps the Tseitin encoding shallow. *)
let balanced app unit l =
  let seen = Hashtbl.create 16 in
  let ops =
    List.filter
      (fun e ->
        (not (Hashtbl.mem seen e.id)) && (Hashtbl.add seen e.id (); true))
      l
  in
  let ops = List.stable_sort (fun a b -> Int.compare a.skey b.skey) ops in
  let rec pairs = function
    | [] -> []
    | [ x ] -> [ x ]
    | a :: b :: rest -> app a b :: pairs rest
  in
  let rec go = function [] -> unit | [ x ] -> x | l -> go (pairs l) in
  go ops

let conj_balanced l = balanced and_ tru l
let disj_balanced l = balanced or_ fls l

let add a b =
  match (a.node, b.node) with
  | Int x, Int y -> int (x + y)
  | Int 0, _ -> b
  | _, Int 0 -> a
  | _ ->
    let a, b = ordered a b in
    make (Add (a, b))

let sub a b =
  match (a.node, b.node) with
  | Int x, Int y -> int (x - y)
  | _, Int 0 -> a
  | _ -> if equal a b then int 0 else make (Sub (a, b))

let mul a b =
  match (a.node, b.node) with
  | Int x, Int y -> int (x * y)
  | Int 0, _ | _, Int 0 -> int 0
  | Int 1, _ -> b
  | _, Int 1 -> a
  | _ ->
    let a, b = ordered a b in
    make (Mul (a, b))

let neg a = match a.node with Int x -> int (-x) | Neg x -> x | _ -> make (Neg a)

let atoms e =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec go e =
    if not (Hashtbl.mem seen e.id) then begin
      Hashtbl.add seen e.id ();
      match e.node with
      | True | False -> ()
      | Not a -> go a
      | And (a, b) | Or (a, b) ->
        go a;
        go b
      | Var v -> if Symbol.sort v = Symbol.Bool then acc := e :: !acc
      | Eq _ | Ne _ | Lt _ | Le _ -> acc := e :: !acc
      | Int _ | Add _ | Sub _ | Mul _ | Neg _ -> ()
    end
  in
  go e;
  List.rev !acc

let vars e =
  let seen = Hashtbl.create 64 in
  let vs = Hashtbl.create 16 in
  let acc = ref [] in
  let rec go e =
    if not (Hashtbl.mem seen e.id) then begin
      Hashtbl.add seen e.id ();
      match e.node with
      | Var v ->
        if not (Hashtbl.mem vs v) then begin
          Hashtbl.add vs v ();
          acc := v :: !acc
        end
      | True | False | Int _ -> ()
      | Not a | Neg a -> go a
      | And (a, b) | Or (a, b) | Eq (a, b) | Ne (a, b) | Lt (a, b) | Le (a, b)
      | Add (a, b) | Sub (a, b) | Mul (a, b) ->
        go a;
        go b
    end
  in
  go e;
  List.rev !acc

let size e =
  let seen = Hashtbl.create 64 in
  let n = ref 0 in
  let rec go e =
    if not (Hashtbl.mem seen e.id) then begin
      Hashtbl.add seen e.id ();
      incr n;
      match e.node with
      | True | False | Int _ | Var _ -> ()
      | Not a | Neg a -> go a
      | And (a, b) | Or (a, b) | Eq (a, b) | Ne (a, b) | Lt (a, b) | Le (a, b)
      | Add (a, b) | Sub (a, b) | Mul (a, b) ->
        go a;
        go b
    end
  in
  go e;
  !n

let subst f e =
  let memo = Hashtbl.create 64 in
  let rec go e =
    match Hashtbl.find_opt memo e.id with
    | Some r -> r
    | None ->
      let r =
        match e.node with
        | True | False | Int _ -> e
        | Var v -> ( match f v with Some r -> r | None -> e)
        | Not a -> not_ (go a)
        | Neg a -> neg (go a)
        | And (a, b) -> and_ (go a) (go b)
        | Or (a, b) -> or_ (go a) (go b)
        | Eq (a, b) -> eq (go a) (go b)
        | Ne (a, b) -> ne (go a) (go b)
        | Lt (a, b) -> lt (go a) (go b)
        | Le (a, b) -> le (go a) (go b)
        | Add (a, b) -> add (go a) (go b)
        | Sub (a, b) -> sub (go a) (go b)
        | Mul (a, b) -> mul (go a) (go b)
      in
      Hashtbl.add memo e.id r;
      r
  in
  go e

type value = VBool of bool | VInt of int

let eval env e =
  let memo = Hashtbl.create 64 in
  let as_bool = function
    | VBool b -> b
    | VInt _ -> invalid_arg "Expr.eval: expected bool"
  in
  let as_int = function
    | VInt n -> n
    | VBool _ -> invalid_arg "Expr.eval: expected int"
  in
  let rec go e =
    match Hashtbl.find_opt memo e.id with
    | Some v -> v
    | None ->
      let v =
        match e.node with
        | True -> VBool true
        | False -> VBool false
        | Int n -> VInt n
        | Var v -> env v
        | Not a -> VBool (not (as_bool (go a)))
        | And (a, b) -> VBool (as_bool (go a) && as_bool (go b))
        | Or (a, b) -> VBool (as_bool (go a) || as_bool (go b))
        | Eq (a, b) -> VBool (go a = go b)
        | Ne (a, b) -> VBool (go a <> go b)
        | Lt (a, b) -> VBool (as_int (go a) < as_int (go b))
        | Le (a, b) -> VBool (as_int (go a) <= as_int (go b))
        | Add (a, b) -> VInt (as_int (go a) + as_int (go b))
        | Sub (a, b) -> VInt (as_int (go a) - as_int (go b))
        | Mul (a, b) -> VInt (as_int (go a) * as_int (go b))
        | Neg a -> VInt (-as_int (go a))
      in
      Hashtbl.add memo e.id v;
      v
  in
  go e

let rec pp ppf e =
  match e.node with
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Int n -> Format.pp_print_int ppf n
  | Var v -> Symbol.pp ppf v
  | Not a -> Format.fprintf ppf "!(%a)" pp a
  | And (a, b) -> Format.fprintf ppf "(%a && %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a || %a)" pp a pp b
  | Eq (a, b) -> Format.fprintf ppf "(%a == %a)" pp a pp b
  | Ne (a, b) -> Format.fprintf ppf "(%a != %a)" pp a pp b
  | Lt (a, b) -> Format.fprintf ppf "(%a < %a)" pp a pp b
  | Le (a, b) -> Format.fprintf ppf "(%a <= %a)" pp a pp b
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Neg a -> Format.fprintf ppf "(-%a)" pp a

let to_string e = Format.asprintf "%a" pp e
