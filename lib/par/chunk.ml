module R = Pinpoint_util.Resilience
module Metrics = Pinpoint_util.Metrics
module Obs = Pinpoint_obs.Obs

(* Task batching (DESIGN.md §4.15).

   A per-function task costs one closure allocation, one queue/deque
   round-trip and one wake-up — a fixed overhead that dwarfs the work
   when functions are small and [--jobs] is high.  This layer groups the
   positional items of a {!Pool.parallel_map} into contiguous chunks so
   the fixed cost amortizes, while keeping everything observable about
   the map identical: slots stay positional, per-item exceptions still
   yield [None] for exactly that slot (recorded as a [Par_task] incident),
   and [jobs <= 1] bypasses chunking entirely.

   Sizing heuristic: overpartition by [overpartition = 4] chunks per lane
   — enough slack that a lane finishing early finds more chunks (or
   steals them) instead of idling, but coarse enough that per-task
   overhead is amortized over ~n/(4*jobs) items.  When item weights are
   known (function statement counts), chunk boundaries are placed by
   cumulative weight rather than item count, so one giant function does
   not ride in a chunk with fifty others.  [set_override] (CLI
   [--chunk-size]) forces a fixed item count per chunk instead. *)

let overpartition = 4

(* CLI override: [Some c] forces chunks of [c] items.  A plain ref —
   written once at startup by the CLI, read by every [plan] call. *)
let override : int option ref = ref None
let set_override c = override := c

let plan ~jobs ?weights n =
  if n <= 0 then []
  else begin
    match !override with
    | Some c ->
      let c = max 1 c in
      let rec cut start acc =
        if start >= n then List.rev acc
        else
          let len = min c (n - start) in
          cut (start + len) ((start, len) :: acc)
      in
      cut 0 []
    | None ->
      let target_chunks = max 1 (min n (max 1 jobs * overpartition)) in
      (match weights with
      | None ->
        (* Equal item counts: ceil-split into [target_chunks] pieces. *)
        let base = n / target_chunks and extra = n mod target_chunks in
        let rec cut i start acc =
          if i >= target_chunks || start >= n then List.rev acc
          else
            let len = base + if i < extra then 1 else 0 in
            if len = 0 then cut (i + 1) start acc
            else cut (i + 1) (start + len) ((start, len) :: acc)
        in
        cut 0 0 []
      | Some w ->
        let total = Array.fold_left ( + ) 0 w in
        let per = max 1 (total / target_chunks) in
        let cuts = ref [] in
        let start = ref 0 and acc = ref 0 in
        for i = 0 to n - 1 do
          acc := !acc + w.(i);
          (* Cut after item [i] once the chunk reached its weight share,
             unless it would leave an empty tail. *)
          if !acc >= per && i < n - 1 then begin
            cuts := (!start, i - !start + 1) :: !cuts;
            start := i + 1;
            acc := 0
          end
        done;
        cuts := (!start, n - !start) :: !cuts;
        List.rev !cuts)
  end

let note pool ~t0 exn =
  match Pool.incident_log pool with
  | None -> ()
  | Some log ->
    R.record log
      {
        R.phase = R.Par_task;
        subject = "pool-task";
        detail = Printexc.to_string exn;
        fallback = "task result dropped";
        elapsed_s = Metrics.now () -. t0;
      }

let parallel_map (type a b) ?weights pool (f : a -> b) (arr : a array) :
    b option array =
  let n = Array.length arr in
  let jobs = Pool.jobs pool in
  if jobs <= 1 || n <= 1 then Pool.parallel_map pool f arr
  else begin
    let chunks = Array.of_list (plan ~jobs ?weights n) in
    if Array.length chunks >= n then Pool.parallel_map pool f arr
    else begin
      let res : b option array = Array.make n None in
      (* Each slot of [res] is written by exactly one chunk task, and the
         trailing [Pool.parallel_map] barrier orders those writes before
         the reads below. *)
      let run_chunk (start, len) =
        for i = start to start + len - 1 do
          let t0 = Metrics.now () in
          try res.(i) <- Some (f arr.(i)) with exn -> note pool ~t0 exn
        done
      in
      ignore (Pool.parallel_map pool run_chunk chunks);
      res
    end
  end

let iter ?weights pool (f : 'a -> unit) (arr : 'a array) : unit =
  ignore (parallel_map ?weights pool f arr)
