module R = Pinpoint_util.Resilience
module Metrics = Pinpoint_util.Metrics
module Obs = Pinpoint_obs.Obs

(* Work-stealing pool (DESIGN.md §4.15).

   Each worker domain owns a deque: tasks submitted from a worker (the
   cascade launches of {!Sched}, chunk subtasks) go to the back of its own
   deque and are popped LIFO by the owner — the common case is then an
   uncontended push/pop on the owner's lock with no global traffic.  Tasks
   submitted from outside the pool (the coordinator) land on a shared
   inject queue.  A worker that runs dry takes from the inject queue, then
   steals from a sibling: it drains the {e front} (oldest, coarsest) half
   of the victim's deque in one lock acquisition, runs one task and keeps
   the rest on its own deque — steal-half amortizes the steal cost over
   ragged waves where one worker inherits a long cascade.

   Locking protocol: a deque lock may be held while taking the global
   [m], never the reverse, and no two deque locks are ever held at once
   (a steal drains the victim under its lock, releases, then pushes the
   surplus under the thief's own lock).  [queued] counts tasks that sit
   in some queue, claimed tasks are counted by [active]; a task is
   accounted [active] {e before} it stops being [queued], so the idle
   predicate [queued = 0 && active = 0] never observes a task in flight
   as already finished. *)

type deque = {
  dm : Mutex.t;
  mutable buf : (unit -> unit) array;
  mutable head : int;  (* index of the oldest task *)
  mutable len : int;
}

type t = {
  jobs : int;
  uid : int;
  mutable log : R.log option;
  inject : (unit -> unit) Queue.t;  (* submissions from non-worker domains *)
  deques : deque array;  (* one per worker domain *)
  m : Mutex.t;
  nonempty : Condition.t;  (* a task was enqueued, or [stop] was set *)
  idle : Condition.t;      (* every queue drained and no task is running *)
  queued : int Atomic.t;   (* tasks resting in the inject queue or a deque *)
  mutable active : int;    (* tasks currently executing on workers/helpers *)
  mutable stop : bool;
  mutable domains : unit Domain.t array;
  alloc : float array;
      (* Per-worker allocated bytes ([Gc.allocated_bytes] is domain-local
         in OCaml 5, so the submitting domain's own measurement misses
         everything the workers allocate).  Each slot is written only by
         its own worker; [allocated_bytes] sums a racy but monotone
         snapshot, which is all the metrics layer needs. *)
  busy : float array;  (* per-lane busy seconds; last slot = helpers *)
  ran : int array;     (* per-lane executed-task counts; last slot = helpers *)
  n_steals : int Atomic.t;  (* successful steal operations *)
  n_stolen : int Atomic.t;  (* tasks that changed lanes via a steal *)
  pub : Mutex.t;  (* serialises publish_obs' read-delta-write *)
  mutable pub_steals : int;  (* par.* amounts already folded into Obs *)
  mutable pub_stolen : int;
  mutable pub_tasks : int;
}

let pool_uids = Atomic.make 0

(* Which pool the current domain is a worker of, and its lane.  Workers
   of a pool submit to their own deque; every other domain injects. *)
let dls_wid : (int * int) Domain.DLS.key = Domain.DLS.new_key (fun () -> (-1, -1))

let jobs t = t.jobs
let set_log t log = t.log <- log
let incident_log t = t.log

let note t ~t0 exn =
  match t.log with
  | None -> ()
  | Some log ->
    R.record log
      {
        R.phase = R.Par_task;
        subject = "pool-task";
        detail = Printexc.to_string exn;
        fallback = "task result dropped";
        elapsed_s = Metrics.now () -. t0;
      }

(* Every queued closure is pre-wrapped with this barrier, so a task can
   never kill the domain that happens to execute it (worker or helping
   caller).  [Out_of_memory] is swallowed too, deliberately: a dead worker
   would deadlock the waiters, which is strictly worse than degrading to a
   dropped task + incident.

   The submitter's ambient request id is captured here (wrap time) and
   re-installed on whichever domain ends up running the task, so spans
   and profiler rows recorded inside stolen work still attribute to the
   originating server request. *)
let guard t task =
  let req = Obs.request_id () in
  let run () = Obs.span "par.task" task in
  let run = if req = "" then run else fun () -> Obs.with_request req run in
  fun () ->
    let t0 = Metrics.now () in
    try run () with exn -> note t ~t0 exn

(* ---- deque primitives (caller holds [d.dm]) ---- *)

let dq_grow d =
  let cap = Array.length d.buf in
  let buf' = Array.make (2 * cap) (fun () -> ()) in
  for i = 0 to d.len - 1 do
    buf'.(i) <- d.buf.((d.head + i) mod cap)
  done;
  d.buf <- buf';
  d.head <- 0

let dq_push_back d task =
  let cap = Array.length d.buf in
  if d.len = cap then dq_grow d;
  let cap = Array.length d.buf in
  d.buf.((d.head + d.len) mod cap) <- task;
  d.len <- d.len + 1

let dq_pop_back d =
  if d.len = 0 then None
  else begin
    let cap = Array.length d.buf in
    let i = (d.head + d.len - 1) mod cap in
    let task = d.buf.(i) in
    d.buf.(i) <- (fun () -> ());
    d.len <- d.len - 1;
    Some task
  end

(* Take [k] tasks from the front (oldest end), front-most first. *)
let dq_take_front d k =
  let cap = Array.length d.buf in
  let taken = ref [] in
  for _ = 1 to k do
    if d.len > 0 then begin
      taken := d.buf.(d.head) :: !taken;
      d.buf.(d.head) <- (fun () -> ());
      d.head <- (d.head + 1) mod cap;
      d.len <- d.len - 1
    end
  done;
  List.rev !taken

(* ---- submission ---- *)

let wake t =
  Mutex.lock t.m;
  Condition.signal t.nonempty;
  Mutex.unlock t.m

let push_inject t task =
  Mutex.lock t.m;
  if t.stop then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task t.inject;
  Atomic.incr t.queued;
  Condition.signal t.nonempty;
  Mutex.unlock t.m

let push_worker t wid task =
  let d = t.deques.(wid) in
  Mutex.lock d.dm;
  dq_push_back d task;
  Atomic.incr t.queued;
  Mutex.unlock d.dm;
  wake t

let enqueue t task =
  let puid, wid = Domain.DLS.get dls_wid in
  if puid = t.uid && wid >= 0 then push_worker t wid task else push_inject t task

(* ---- claiming: flip a task from queued to active ----

   Ordered so observers never see it as neither: [active] is bumped while
   the task is still counted in [queued], then [queued] is released. *)

let claim t =
  Mutex.lock t.m;
  t.active <- t.active + 1;
  Mutex.unlock t.m;
  Atomic.decr t.queued

let finish_one t =
  Mutex.lock t.m;
  t.active <- t.active - 1;
  if t.active = 0 && Atomic.get t.queued = 0 then Condition.broadcast t.idle;
  Mutex.unlock t.m

(* ---- taking work ---- *)

let take_own t wid =
  let d = t.deques.(wid) in
  Mutex.lock d.dm;
  match dq_pop_back d with
  | Some task ->
    claim t;
    Mutex.unlock d.dm;
    Some task
  | None ->
    Mutex.unlock d.dm;
    None

let take_inject t =
  Mutex.lock t.m;
  if Queue.is_empty t.inject then begin
    Mutex.unlock t.m;
    None
  end
  else begin
    let task = Queue.pop t.inject in
    t.active <- t.active + 1;
    Mutex.unlock t.m;
    Atomic.decr t.queued;
    Some task
  end

(* Steal from some sibling deque, round-robin from [thief + 1].  Takes the
   oldest [ceil (len / 2)] tasks in one victim-lock acquisition; the first
   is claimed and returned to run now, the surplus is re-queued — onto the
   thief's own deque when the thief is a worker, back via the inject queue
   for a helping external domain (which owns no deque). *)
let steal t ~thief =
  let nw = Array.length t.deques in
  let rec go tried =
    if tried >= nw then None
    else begin
      let v = (thief + 1 + tried) mod nw in
      if v = thief then go (tried + 1)
      else begin
        let d = t.deques.(v) in
        Mutex.lock d.dm;
        let k = (d.len + 1) / 2 in
        let taken = if k = 0 then [] else dq_take_front d k in
        Mutex.unlock d.dm;
        match taken with
        | [] -> go (tried + 1)
        | task :: surplus ->
          Atomic.incr t.n_steals;
          ignore (Atomic.fetch_and_add t.n_stolen (List.length taken));
          (if surplus <> [] then
             if thief >= 0 then begin
               let own = t.deques.(thief) in
               Mutex.lock own.dm;
               List.iter (dq_push_back own) surplus;
               Mutex.unlock own.dm;
               wake t
             end
             else begin
               (* external helper: hand the surplus back for anyone *)
               Mutex.lock t.m;
               List.iter (fun task -> Queue.push task t.inject) surplus;
               Condition.broadcast t.nonempty;
               Mutex.unlock t.m
             end);
          claim t;
          Some task
      end
    end
  in
  if nw = 0 then None else go 0

let find_task t wid =
  match take_own t wid with
  | Some _ as r -> r
  | None -> (
    match take_inject t with
    | Some _ as r -> r
    | None -> steal t ~thief:wid)

(* ---- execution lanes ---- *)

let run_task t lane task =
  let t0 = Metrics.now () in
  task ();
  t.busy.(lane) <- t.busy.(lane) +. (Metrics.now () -. t0);
  t.ran.(lane) <- t.ran.(lane) + 1;
  finish_one t

let rec worker t wid =
  match find_task t wid with
  | Some task ->
    let a0 = Gc.allocated_bytes () in
    run_task t wid task;
    t.alloc.(wid) <- t.alloc.(wid) +. (Gc.allocated_bytes () -. a0);
    worker t wid
  | None ->
    Mutex.lock t.m;
    while Atomic.get t.queued = 0 && not t.stop do
      Condition.wait t.nonempty t.m
    done;
    let quit = t.stop && Atomic.get t.queued = 0 in
    Mutex.unlock t.m;
    if not quit then worker t wid

let effective_jobs jobs =
  max 1 (min jobs (Domain.recommended_domain_count ()))

let create ?log ~jobs () =
  let jobs = max 1 jobs in
  let n_workers = jobs - 1 in
  let t =
    {
      jobs;
      uid = Atomic.fetch_and_add pool_uids 1;
      log;
      inject = Queue.create ();
      deques =
        Array.init n_workers (fun _ ->
            { dm = Mutex.create (); buf = Array.make 32 (fun () -> ()); head = 0; len = 0 });
      m = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      queued = Atomic.make 0;
      active = 0;
      stop = false;
      domains = [||];
      alloc = Array.make (max 1 n_workers) 0.0;
      busy = Array.make (n_workers + 1) 0.0;
      ran = Array.make (n_workers + 1) 0;
      n_steals = Atomic.make 0;
      n_stolen = Atomic.make 0;
      pub = Mutex.create ();
      pub_steals = 0;
      pub_stolen = 0;
      pub_tasks = 0;
    }
  in
  t.domains <-
    Array.init n_workers (fun wid ->
        Domain.spawn (fun () ->
            Domain.DLS.set dls_wid (t.uid, wid);
            worker t wid));
  t

let submit t task =
  let task = guard t task in
  if t.jobs <= 1 then task () else enqueue t task

(* The helper lane (the submitting domain lending itself): takes from the
   inject queue first, then steals.  Used by {!parallel_map} and by the
   {!Sched} drive loop. *)
let try_run_one t =
  let lane = Array.length t.deques in
  match take_inject t with
  | Some task ->
    run_task t lane task;
    true
  | None -> (
    match steal t ~thief:(-1) with
    | Some task ->
      run_task t lane task;
      true
    | None -> false)

let parallel_map (type a b) t (f : a -> b) (arr : a array) : b option array =
  let n = Array.length arr in
  let res : b option array = Array.make n None in
  if t.jobs <= 1 || n <= 1 then
    Array.iteri
      (fun i x ->
        let t0 = Metrics.now () in
        try res.(i) <- Some (Obs.span "par.task" (fun () -> f x))
        with exn -> note t ~t0 exn)
      arr
  else begin
    let m = Mutex.create () in
    let fin = Condition.create () in
    let remaining = ref n in
    (* Same request re-attribution as [guard]: the closures run on
       arbitrary worker domains. *)
    let req = Obs.request_id () in
    let with_req g = if req = "" then g () else Obs.with_request req g in
    let run i () =
      let t0 = Metrics.now () in
      (try
         res.(i) <-
           Some (with_req (fun () -> Obs.span "par.task" (fun () -> f arr.(i))))
       with exn -> note t ~t0 exn);
      Mutex.lock m;
      decr remaining;
      if !remaining = 0 then Condition.broadcast fin;
      Mutex.unlock m
    in
    for i = 0 to n - 1 do enqueue t (run i) done;
    (* The caller is one of the [jobs] lanes: help drain the queues, then
       wait for stragglers still running on workers. *)
    while try_run_one t do () done;
    Mutex.lock m;
    while !remaining > 0 do Condition.wait fin m done;
    Mutex.unlock m
  end;
  res

let wait_idle t =
  if t.jobs > 1 then begin
    Mutex.lock t.m;
    while not (Atomic.get t.queued = 0 && t.active = 0) do
      Condition.wait t.idle t.m
    done;
    Mutex.unlock t.m
  end

type steal_stats = { steals : int; stolen_tasks : int; helper_tasks : int }

let steal_stats t =
  {
    steals = Atomic.get t.n_steals;
    stolen_tasks = Atomic.get t.n_stolen;
    helper_tasks = t.ran.(Array.length t.deques);
  }

(* Scheduling observability (DESIGN.md §4.15): lifetime counters, folded
   into the registry so [--metrics-json] and the server's live window
   report how the run was load-balanced.  Delta-republishing: each call
   adds only what accumulated since the last publish, so a long-lived
   server can refresh par.* on every [status]/[metrics] op and the
   registry counters stay equal to the pool's lifetime totals — and a
   second publish with no new work adds exactly 0 (idempotence).
   Purely observational — never read by the analysis. *)
let publish_obs t =
  if Obs.metrics_on () then
    Mutex.protect t.pub (fun () ->
        let steals = Atomic.get t.n_steals in
        let stolen = Atomic.get t.n_stolen in
        let tasks = Array.fold_left ( + ) 0 t.ran in
        Obs.add (Obs.counter "par.steals") (steals - t.pub_steals);
        Obs.add (Obs.counter "par.stolen_tasks") (stolen - t.pub_stolen);
        Obs.add (Obs.counter "par.tasks") (tasks - t.pub_tasks);
        t.pub_steals <- steals;
        t.pub_stolen <- stolen;
        t.pub_tasks <- tasks;
        Obs.set_gauge (Obs.gauge "par.busy_s") (Obs.Agg.sum_f t.busy))

let shutdown t =
  if t.jobs > 1 then begin
    wait_idle t;
    Mutex.lock t.m;
    let already = t.stop in
    t.stop <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.m;
    if not already then begin
      Array.iter Domain.join t.domains;
      publish_obs t
    end
  end

let with_pool ?log ~jobs f =
  let t = create ?log ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let allocated_bytes t = Obs.Agg.sum_f t.alloc
