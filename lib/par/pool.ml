module R = Pinpoint_util.Resilience
module Metrics = Pinpoint_util.Metrics
module Obs = Pinpoint_obs.Obs

type t = {
  jobs : int;
  mutable log : R.log option;
  queue : (unit -> unit) Queue.t;
  m : Mutex.t;
  nonempty : Condition.t;  (* a task was enqueued, or [stop] was set *)
  idle : Condition.t;      (* the queue drained and no task is running *)
  mutable active : int;    (* tasks currently executing on workers/helpers *)
  mutable stop : bool;
  mutable domains : unit Domain.t array;
  alloc : float array;
      (* Per-worker allocated bytes ([Gc.allocated_bytes] is domain-local
         in OCaml 5, so the submitting domain's own measurement misses
         everything the workers allocate).  Each slot is written only by
         its own worker; [allocated_bytes] sums a racy but monotone
         snapshot, which is all the metrics layer needs. *)
}

let jobs t = t.jobs
let set_log t log = t.log <- log

let note t ~t0 exn =
  match t.log with
  | None -> ()
  | Some log ->
    R.record log
      {
        R.phase = R.Par_task;
        subject = "pool-task";
        detail = Printexc.to_string exn;
        fallback = "task result dropped";
        elapsed_s = Metrics.now () -. t0;
      }

(* Every queued closure is pre-wrapped with this barrier, so a task can
   never kill the domain that happens to execute it (worker or helping
   caller).  [Out_of_memory] is swallowed too, deliberately: a dead worker
   would deadlock the waiters, which is strictly worse than degrading to a
   dropped task + incident. *)
let guard t task () =
  let t0 = Metrics.now () in
  try Obs.span "par.task" task with exn -> note t ~t0 exn

let enqueue t task =
  Mutex.lock t.m;
  if t.stop then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.m

let finish_one t =
  Mutex.lock t.m;
  t.active <- t.active - 1;
  if t.active = 0 && Queue.is_empty t.queue then Condition.broadcast t.idle;
  Mutex.unlock t.m

let try_run_one t =
  Mutex.lock t.m;
  if Queue.is_empty t.queue then begin
    Mutex.unlock t.m;
    false
  end
  else begin
    let task = Queue.pop t.queue in
    t.active <- t.active + 1;
    Mutex.unlock t.m;
    task ();
    finish_one t;
    true
  end

let rec worker t wid =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.stop do
    Condition.wait t.nonempty t.m
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.m (* stop, queue drained *)
  else begin
    let task = Queue.pop t.queue in
    t.active <- t.active + 1;
    Mutex.unlock t.m;
    let a0 = Gc.allocated_bytes () in
    task ();
    t.alloc.(wid) <- t.alloc.(wid) +. (Gc.allocated_bytes () -. a0);
    finish_one t;
    worker t wid
  end

let create ?log ~jobs () =
  let jobs = max 1 jobs in
  let n_workers = jobs - 1 in
  let t =
    {
      jobs;
      log;
      queue = Queue.create ();
      m = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      active = 0;
      stop = false;
      domains = [||];
      alloc = Array.make (max 1 n_workers) 0.0;
    }
  in
  t.domains <- Array.init n_workers (fun wid -> Domain.spawn (fun () -> worker t wid));
  t

let submit t task =
  let task = guard t task in
  if t.jobs <= 1 then task () else enqueue t task

let parallel_map (type a b) t (f : a -> b) (arr : a array) : b option array =
  let n = Array.length arr in
  let res : b option array = Array.make n None in
  if t.jobs <= 1 || n <= 1 then
    Array.iteri
      (fun i x ->
        let t0 = Metrics.now () in
        try res.(i) <- Some (Obs.span "par.task" (fun () -> f x))
        with exn -> note t ~t0 exn)
      arr
  else begin
    let m = Mutex.create () in
    let fin = Condition.create () in
    let remaining = ref n in
    let run i () =
      let t0 = Metrics.now () in
      (try res.(i) <- Some (Obs.span "par.task" (fun () -> f arr.(i)))
       with exn -> note t ~t0 exn);
      Mutex.lock m;
      decr remaining;
      if !remaining = 0 then Condition.broadcast fin;
      Mutex.unlock m
    in
    for i = 0 to n - 1 do enqueue t (run i) done;
    (* The caller is one of the [jobs] lanes: help drain the queue, then
       wait for stragglers still running on workers. *)
    while try_run_one t do () done;
    Mutex.lock m;
    while !remaining > 0 do Condition.wait fin m done;
    Mutex.unlock m
  end;
  res

let wait_idle t =
  if t.jobs > 1 then begin
    Mutex.lock t.m;
    while not (Queue.is_empty t.queue && t.active = 0) do
      Condition.wait t.idle t.m
    done;
    Mutex.unlock t.m
  end

let shutdown t =
  if t.jobs > 1 then begin
    wait_idle t;
    Mutex.lock t.m;
    let already = t.stop in
    t.stop <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.m;
    if not already then Array.iter Domain.join t.domains
  end

let with_pool ?log ~jobs f =
  let t = create ?log ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let allocated_bytes t = Obs.Agg.sum_f t.alloc
