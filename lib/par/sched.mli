(** SCC-wave scheduler for bottom-up interprocedural passes.

    The transform and summary stages process functions callees-first: a
    component of the call graph may start only when every component it
    calls into has finished (its summaries/interfaces are then complete).
    This module runs that partial order on a {!Pool}: components with no
    unfinished callees are released immediately, and each completion
    releases exactly the callers it unblocks — a rolling wave, not
    lock-step levels. *)

val run_bottom_up :
  Pool.t -> Pinpoint_util.Digraph.t -> (int list -> unit) -> unit
(** [run_bottom_up pool g f] calls [f members] once per strongly-connected
    component of [g] (members as produced by
    {!Pinpoint_util.Digraph.sccs}), guaranteeing that all components
    reachable from a component via edges ([caller -> callee]) complete
    before it starts.  With [Pool.jobs pool <= 1] this degenerates to
    [List.iter f (Digraph.sccs g)] — the exact sequential order.  [f] runs
    on worker domains (or the calling domain, which helps); it must do its
    own locking around shared tables and must not raise (wrap the body in
    {!Pinpoint_util.Resilience.protect}). *)

val run_bottom_up_batched :
  ?weights:int array ->
  Pool.t ->
  Pinpoint_util.Digraph.t ->
  (int list list -> unit) ->
  unit
(** Like {!run_bottom_up}, but components released at the same instant —
    which are mutually independent by the [pending]-count argument in the
    implementation — are handed to [f] as one batch, sized by
    {!Chunk.plan} over per-component weights ([weights] gives a weight per
    {e graph node}, e.g. statement counts; member count is the default).
    One batch = one pool task, so per-task overhead and per-component
    table locking amortize.  With [Pool.jobs pool <= 1] this is
    [List.iter (fun c -> f [c]) (Digraph.sccs g)] — the exact sequential
    order in singleton batches. *)
