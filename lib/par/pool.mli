(** A fixed-size, work-stealing pool of worker domains.

    The parallel runtime of the analysis (DESIGN.md §4.9, §4.15):
    [Analysis], [Transform], [Rv] and [Engine] hand their per-chunk /
    per-SCC-batch / per-source task units to a pool instead of running
    them inline.

    Design points:

    - {b jobs <= 1 means inline}: no domains are spawned and [submit] runs
      the task on the calling domain immediately.  The sequential pipeline
      is therefore exactly the code path exercised by a 1-core run, and
      [--jobs 1] is byte-for-byte the historical behaviour.
    - {b work stealing}: each worker owns a deque; tasks submitted from a
      worker go to its own deque (uncontended in the common case) and a
      dry worker steals the oldest half of a sibling's deque in one lock
      acquisition.  External submissions land on a shared inject queue.
      Stealing only changes {e which lane} runs a task, never the result:
      all stages that use the pool merge in deterministic (positional or
      program) order, so reports and stats are byte-identical at any
      [--jobs] level regardless of the steal schedule.
    - {b exception capture}: a task that escapes its own barriers never
      kills a worker.  The exception is recorded as a [Par_task] incident
      on the pool's {!Pinpoint_util.Resilience.log} (when one is attached
      with {!set_log}) and, for {!parallel_map}, the slot yields [None].
    - {b allocation accounting}: each worker tracks the bytes it allocates
      (domain-local [Gc.allocated_bytes] deltas); {!allocated_bytes} sums
      them so {!Pinpoint_util.Metrics.measure} can report whole-run
      allocation, not just the submitting domain's. *)

type t

val create : ?log:Pinpoint_util.Resilience.log -> jobs:int -> unit -> t
(** Spawn a pool of [max 0 (jobs - 1)] worker domains ([jobs] counts the
    submitting domain: [jobs = 4] means at most 4 tasks run concurrently,
    one of them on the caller inside {!parallel_map}).  [jobs <= 1] spawns
    nothing and every task runs inline. *)

val jobs : t -> int
(** The configured concurrency level (>= 1). *)

val effective_jobs : int -> int
(** [effective_jobs jobs] caps a requested [--jobs] level at the host's
    recommended domain count.  Spawning more domains than cores cannot
    run more work concurrently — it only adds stop-the-world GC barrier
    and scheduling cost — and results are identical at every level, so
    the CLI and benchmarks create pools at this capped width.  Tests
    that deliberately oversubscribe call {!with_pool} directly. *)

val set_log : t -> Pinpoint_util.Resilience.log option -> unit
(** Attach (or detach) the incident log that receives [Par_task] records. *)

val incident_log : t -> Pinpoint_util.Resilience.log option
(** The currently attached log, if any — {!Chunk} records its per-item
    failures on the same log. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a fire-and-forget task.  Exceptions it raises are captured and
    logged, never re-raised.  Runs inline when [jobs <= 1]. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b option array
(** Apply [f] to every element, slot [i] of the result holding [Some (f
    a.(i))] — or [None] if that application raised (the exception is
    recorded as an incident).  The caller participates: with [jobs = n],
    [n] applications run concurrently.  Result slots are positional, so
    output order is independent of completion order. *)

val try_run_one : t -> bool
(** Pop one queued task and run it on the calling domain; [false] if the
    queue was empty.  Lets a blocked coordinator (see {!Sched}) lend its
    domain instead of idling. *)

val wait_idle : t -> unit
(** Block until every submitted task has finished and the queue is empty. *)

val shutdown : t -> unit
(** {!wait_idle}, then stop and join the workers.  The pool must not be
    used afterwards.  Idempotent. *)

val with_pool :
  ?log:Pinpoint_util.Resilience.log -> jobs:int -> (t -> 'a) -> 'a
(** [create], run the function, then {!shutdown} (also on exception). *)

val allocated_bytes : t -> float
(** Total bytes allocated by the worker domains so far (excluding the
    submitting domain, which [Gc.allocated_bytes] already covers). *)

type steal_stats = {
  steals : int;  (** successful steal operations (victim deque non-empty) *)
  stolen_tasks : int;  (** tasks that changed lanes via a steal *)
  helper_tasks : int;  (** tasks executed by helping external domains *)
}

val steal_stats : t -> steal_stats
(** Lifetime load-balancing counters.  Observational only: the steal
    schedule never affects analysis results.  Also published to the
    [par.*] Obs counters at {!shutdown} when metrics are on. *)

val publish_obs : t -> unit
(** Fold the [par.*] counters and [par.busy_s] gauge into the Obs
    registry now (no-op when metrics are off).  Delta-republishing: each
    call adds only what accumulated since the previous one, so the
    registry always equals the pool's lifetime totals however often it
    is called — a long-lived server refreshes on every [status] /
    [metrics] op, and a second publish with no intervening work adds
    exactly 0 (the idempotence {!shutdown}, which also calls this,
    relies on). *)
