(** Task batching over {!Pool.parallel_map} (DESIGN.md §4.15).

    Groups the items of a positional parallel map into contiguous chunks
    so the per-task fixed cost (closure, queue round-trip, wake-up)
    amortizes over ~[n / (4 * jobs)] items.  Chunking changes {e only}
    scheduling granularity: result slots stay positional, a per-item
    exception still yields [None] for exactly that slot (recorded as a
    [Par_task] incident on the pool's log), and [jobs <= 1] bypasses
    chunking entirely — so reports and stats are byte-identical to the
    unchunked map at every [--jobs] level. *)

val overpartition : int
(** Chunks per lane the planner aims for (4): slack for load balancing
    without per-item overhead. *)

val override : int option ref
(** [Some c] forces every chunk to [c] items ([--chunk-size c]); [None]
    (the default) uses the weight-balanced heuristic. *)

val set_override : int option -> unit

val plan : jobs:int -> ?weights:int array -> int -> (int * int) list
(** [plan ~jobs n] partitions indices [0 .. n-1] into contiguous
    [(start, len)] chunks, in index order, covering every index exactly
    once.  Aims for [jobs * overpartition] chunks; with [weights] (one
    non-negative weight per item, e.g. statement counts) boundaries are
    placed by cumulative weight so heavy items don't share a chunk with
    many light ones.  Respects {!override}. *)

val parallel_map :
  ?weights:int array -> Pool.t -> ('a -> 'b) -> 'a array -> 'b option array
(** Drop-in replacement for {!Pool.parallel_map} that submits one pool
    task per chunk instead of one per item. *)

val iter : ?weights:int array -> Pool.t -> ('a -> unit) -> 'a array -> unit
(** {!parallel_map} with the results discarded. *)
