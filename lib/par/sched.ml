module Digraph = Pinpoint_util.Digraph

(* SCC-wave scheduling over a call graph.  [Digraph.sccs] already yields
   the condensation in reverse topological order (callees first), so the
   sequential fallback is a plain fold.  The parallel path turns the
   condensation into a dependency-counted DAG and releases a component to
   the pool the moment its last callee component completes — a rolling
   bottom-up wave rather than lock-step levels, so one slow component only
   delays the components that actually depend on it. *)

let run_bottom_up pool (g : Digraph.t) (f : int list -> unit) =
  let comps = Digraph.sccs g in
  if Pool.jobs pool <= 1 then List.iter f comps
  else begin
    let comps = Array.of_list comps in
    let nc = Array.length comps in
    if nc > 0 then begin
      let comp_of = Array.make (Digraph.n_nodes g) (-1) in
      Array.iteri
        (fun ci members -> List.iter (fun v -> comp_of.(v) <- ci) members)
        comps;
      (* Caller comp [cu] waits on callee comp [cv] for every distinct
         cross-component edge u -> v. *)
      let pending = Array.make nc 0 in
      let dependents = Array.make nc [] in
      let seen = Hashtbl.create 256 in
      Digraph.iter_edges g (fun u v ->
          let cu = comp_of.(u) and cv = comp_of.(v) in
          if cu >= 0 && cv >= 0 && cu <> cv && not (Hashtbl.mem seen (cu, cv))
          then begin
            Hashtbl.add seen (cu, cv) ();
            pending.(cu) <- pending.(cu) + 1;
            dependents.(cv) <- cu :: dependents.(cv)
          end);
      let m = Mutex.create () in
      let progress = Condition.create () in
      let completed = ref 0 in
      let rec launch ci =
        Pool.submit pool (fun () ->
            Fun.protect
              ~finally:(fun () -> complete ci)
              (fun () -> f comps.(ci)))
      and complete ci =
        let ready = ref [] in
        Mutex.lock m;
        incr completed;
        List.iter
          (fun cu ->
            pending.(cu) <- pending.(cu) - 1;
            if pending.(cu) = 0 then ready := cu :: !ready)
          dependents.(ci);
        Condition.broadcast progress;
        Mutex.unlock m;
        (* Launch outside the lock: submit may run the task inline. *)
        List.iter launch (List.sort compare !ready)
      in
      (* Snapshot the leaves BEFORE submitting anything: once the first
         task is enqueued, workers start completing components and
         cascade-launching their dependents concurrently — re-reading
         [pending.(ci)] here would race with those decrements and could
         launch a cascade-released component a second time.  A structural
         leaf (pending = 0 from the graph alone) can never be released by
         [complete], so the snapshot set and the cascade set are disjoint. *)
      let leaves = ref [] in
      for ci = nc - 1 downto 0 do
        if pending.(ci) = 0 then leaves := ci :: !leaves
      done;
      List.iter launch !leaves;
      (* Drive: the caller helps execute queued components; when the queue
         is empty it blocks until some in-flight component completes (which
         may release new ones). *)
      let rec drive () =
        let done_ = Mutex.protect m (fun () -> !completed >= nc) in
        if not done_ then
          if Pool.try_run_one pool then drive ()
          else begin
            Mutex.lock m;
            let c0 = !completed in
            while !completed = c0 && !completed < nc do
              Condition.wait progress m
            done;
            Mutex.unlock m;
            drive ()
          end
      in
      drive ()
    end
  end
