module Digraph = Pinpoint_util.Digraph

(* SCC-wave scheduling over a call graph.  [Digraph.sccs] already yields
   the condensation in reverse topological order (callees first), so the
   sequential fallback is a plain fold.  The parallel path turns the
   condensation into a dependency-counted DAG and releases a component to
   the pool the moment its last callee component completes — a rolling
   bottom-up wave rather than lock-step levels, so one slow component only
   delays the components that actually depend on it.

   Batching (DESIGN.md §4.15): components that become ready {e at the same
   time} are mutually independent — [pending.(c)] counts unfinished callee
   components, so if two components both hit zero before either has run,
   neither can depend on the other.  A simultaneous release set can
   therefore be partitioned into batches that one task processes
   back-to-back: per-function task overhead and per-component table
   locking amortize over the batch, and {!Chunk.plan} sizes the batches by
   component weight so a ragged wave still overpartitions enough for the
   pool's work stealing to balance it. *)

(* Shared core: run the condensation DAG, releasing simultaneously-ready
   components through [batches_of] (identity-per-component for the classic
   entry point).  [f] receives one batch of component member-lists. *)
let run_dag pool (g : Digraph.t) ~(batches_of : int array -> int list -> int list list)
    (f : int list list -> unit) =
  let comps = Array.of_list (Digraph.sccs g) in
  let nc = Array.length comps in
  if nc > 0 then begin
    let comp_of = Array.make (Digraph.n_nodes g) (-1) in
    Array.iteri
      (fun ci members -> List.iter (fun v -> comp_of.(v) <- ci) members)
      comps;
    (* Caller comp [cu] waits on callee comp [cv] for every distinct
       cross-component edge u -> v. *)
    let pending = Array.make nc 0 in
    let dependents = Array.make nc [] in
    let seen = Hashtbl.create 256 in
    Digraph.iter_edges g (fun u v ->
        let cu = comp_of.(u) and cv = comp_of.(v) in
        if cu >= 0 && cv >= 0 && cu <> cv && not (Hashtbl.mem seen (cu, cv))
        then begin
          Hashtbl.add seen (cu, cv) ();
          pending.(cu) <- pending.(cu) + 1;
          dependents.(cv) <- cu :: dependents.(cv)
        end);
    let sizes = Array.map List.length comps in
    let m = Mutex.create () in
    let progress = Condition.create () in
    let completed = ref 0 in
    let rec launch batch =
      Pool.submit pool (fun () ->
          Fun.protect
            ~finally:(fun () -> complete batch)
            (fun () -> f (List.map (fun ci -> comps.(ci)) batch)))
    and complete batch =
      let ready = ref [] in
      Mutex.lock m;
      completed := !completed + List.length batch;
      List.iter
        (fun ci ->
          List.iter
            (fun cu ->
              pending.(cu) <- pending.(cu) - 1;
              if pending.(cu) = 0 then ready := cu :: !ready)
            dependents.(ci))
        batch;
      Condition.broadcast progress;
      Mutex.unlock m;
      (* Launch outside the lock: submit may run the task inline. *)
      List.iter launch (batches_of sizes (List.sort compare !ready))
    in
    (* Snapshot the leaves BEFORE submitting anything: once the first
       task is enqueued, workers start completing components and
       cascade-launching their dependents concurrently — re-reading
       [pending.(ci)] here would race with those decrements and could
       launch a cascade-released component a second time.  A structural
       leaf (pending = 0 from the graph alone) can never be released by
       [complete], so the snapshot set and the cascade set are disjoint. *)
    let leaves = ref [] in
    for ci = nc - 1 downto 0 do
      if pending.(ci) = 0 then leaves := ci :: !leaves
    done;
    List.iter launch (batches_of sizes !leaves);
    (* Drive: the caller helps execute queued components; when the queue
       is empty it blocks until some in-flight component completes (which
       may release new ones). *)
    let rec drive () =
      let done_ = Mutex.protect m (fun () -> !completed >= nc) in
      if not done_ then
        if Pool.try_run_one pool then drive ()
        else begin
          Mutex.lock m;
          let c0 = !completed in
          while !completed = c0 && !completed < nc do
            Condition.wait progress m
          done;
          Mutex.unlock m;
          drive ()
        end
    in
    drive ()
  end

let run_bottom_up pool (g : Digraph.t) (f : int list -> unit) =
  let comps = Digraph.sccs g in
  if Pool.jobs pool <= 1 then List.iter f comps
  else
    run_dag pool g
      ~batches_of:(fun _sizes ready -> List.map (fun ci -> [ ci ]) ready)
      (fun batch -> List.iter f batch)

let run_bottom_up_batched ?weights pool (g : Digraph.t)
    (f : int list list -> unit) =
  let comps = Digraph.sccs g in
  if Pool.jobs pool <= 1 then List.iter (fun c -> f [ c ]) comps
  else begin
    (* Per-component weight: member count, or the summed node weights
       (statement counts) when the caller knows them. *)
    let comp_weight sizes members ci =
      match weights with
      | None -> sizes.(ci)
      | Some w -> List.fold_left (fun acc v -> acc + w.(v)) 0 members
    in
    let comps_arr = Array.of_list comps in
    run_dag pool g
      ~batches_of:(fun sizes ready ->
        match ready with
        | [] -> []
        | [ ci ] -> [ [ ci ] ]
        | _ ->
          let arr = Array.of_list ready in
          let ws =
            Array.map (fun ci -> comp_weight sizes comps_arr.(ci) ci) arr
          in
          Chunk.plan ~jobs:(Pool.jobs pool) ~weights:ws (Array.length arr)
          |> List.map (fun (start, len) ->
                 Array.to_list (Array.sub arr start len)))
      f
  end
