(** Hand-written lexer for MC.

    Produces the full token stream eagerly with positions; the recursive-
    descent parser then walks the array.  Supports [//] line comments and
    [/* ... */] block comments. *)

type token =
  | INT of int
  | IDENT of string
  | STRING of string
  | KW_INT | KW_BOOL | KW_VOID | KW_IF | KW_ELSE | KW_WHILE | KW_RETURN
  | KW_TRUE | KW_FALSE | KW_NULL | KW_UNIT | KW_MALLOC | KW_METHOD | KW_VCALL
  | LPAREN | RPAREN | LBRACE | RBRACE | COMMA | SEMI
  | STAR | PLUS | MINUS | BANG
  | ASSIGN | EQ | NE | LT | LE | GT | GE | ANDAND | OROR
  | EOF

type located = { tok : token; line : int }

exception Error of string * int  (** message, line *)

val tokenize : ?file:string -> string -> located array
(** Lex a source string.  Raises {!Error} on invalid input. *)

val pp_token : Format.formatter -> token -> unit
