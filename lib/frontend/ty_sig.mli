(** Function type signatures, including the built-in models for intrinsics
    (§4.2: "we manually model some standard C libraries"). *)

type t = {
  ret : Pinpoint_ir.Ty.t option;
  params : Pinpoint_ir.Ty.t list option;
      (** [None] means variadic/unchecked (e.g. [print]). *)
}

val intrinsic : string -> t option
(** The signature of a modelled intrinsic, if the name is one:
    [free], [print]/[output]/[use] (variadic observers),
    [fgetc]/[input] (tainted integer sources), [getpass] (sensitive string
    source), [fopen] (file-name sink returning a handle), [sendto]
    (transmission sink), [memset]/[memcpy]. *)
