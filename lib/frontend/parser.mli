(** Recursive-descent parser for MC.

    Grammar (precedence low to high: [||], [&&], equality, relational,
    additive, multiplicative, unary):

    {v
      program  := (unitdecl | func)*
      unitdecl := "unit" STRING ";"
      func     := rettype IDENT "(" params? ")" block
      rettype  := ("int" | "bool") "*"* | "void"
      params   := ty IDENT ("," ty IDENT)*
      ty       := ("int" | "bool") "*"*
      block    := "{" stmt* "}"
      stmt     := ty IDENT ("=" expr)? ";"
                | IDENT "=" expr ";"
                | "*"+ IDENT "=" expr ";"
                | "if" "(" expr ")" stmt ("else" stmt)?
                | "while" "(" expr ")" stmt
                | "return" expr? ";"
                | expr ";"
                | block
      primary  := INT | "true" | "false" | "null" | "malloc" "(" ")"
                | IDENT | IDENT "(" args? ")" | "(" expr ")"
    v} *)

exception Error of string * int  (** message, line *)

val parse_string : ?file:string -> string -> Ast.program
val parse_file : string -> Ast.program

type stream
(** A tokenised source, replayable: tokenize once, parse many times. *)

val stream : ?file:string -> string -> stream

val iter_fdecls : stream -> (Ast.fdecl -> unit) -> unit
(** Parse the stream from the top, handing each function declaration to
    the callback as soon as it is built — the whole-program AST is never
    materialised (the lowering pipeline makes two passes: signatures and
    method groups first, then the functions themselves).  Raises
    {!Error} exactly as {!parse_string} would. *)
