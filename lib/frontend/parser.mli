(** Recursive-descent parser for MC.

    Grammar (precedence low to high: [||], [&&], equality, relational,
    additive, multiplicative, unary):

    {v
      program  := (unitdecl | func)*
      unitdecl := "unit" STRING ";"
      func     := rettype IDENT "(" params? ")" block
      rettype  := ("int" | "bool") "*"* | "void"
      params   := ty IDENT ("," ty IDENT)*
      ty       := ("int" | "bool") "*"*
      block    := "{" stmt* "}"
      stmt     := ty IDENT ("=" expr)? ";"
                | IDENT "=" expr ";"
                | "*"+ IDENT "=" expr ";"
                | "if" "(" expr ")" stmt ("else" stmt)?
                | "while" "(" expr ")" stmt
                | "return" expr? ";"
                | expr ";"
                | block
      primary  := INT | "true" | "false" | "null" | "malloc" "(" ")"
                | IDENT | IDENT "(" args? ")" | "(" expr ")"
    v} *)

exception Error of string * int  (** message, line *)

val parse_string : ?file:string -> string -> Ast.program
val parse_file : string -> Ast.program
