open Lexer

exception Error of string * int

type state = {
  file : string;
  toks : located array;
  mutable pos : int;
  mutable unit_name : string;
}

let cur st = st.toks.(st.pos)
let peek_tok st = (cur st).tok
let peek2 st = if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).tok else EOF
let line st = (cur st).line
let loc st : Ast.loc = { file = st.file; line = line st }
let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise (Error (Printf.sprintf "%s (found '%s')" msg
                  (Pinpoint_util.Pp.to_string pp_token (peek_tok st)), line st))

let expect st tok msg =
  if peek_tok st = tok then advance st else fail st msg

let ident st =
  match peek_tok st with
  | IDENT x ->
    advance st;
    x
  | _ -> fail st "expected identifier"

(* ty := ("int" | "bool") "*"* *)
let base_ty st : Pinpoint_ir.Ty.t option =
  match peek_tok st with
  | KW_INT ->
    advance st;
    Some Pinpoint_ir.Ty.Int
  | KW_BOOL ->
    advance st;
    Some Pinpoint_ir.Ty.Bool
  | _ -> None

let stars st =
  let k = ref 0 in
  while peek_tok st = STAR do
    advance st;
    incr k
  done;
  !k

let ty st =
  match base_ty st with
  | None -> fail st "expected type"
  | Some b -> Pinpoint_ir.Ty.ptr_k b (stars st)

(* Expressions *)
let rec expr st = or_expr st

and or_expr st =
  let l = loc st in
  let a = and_expr st in
  if peek_tok st = OROR then begin
    advance st;
    let b = or_expr st in
    { Ast.eloc = l; enode = Ast.Ebin (Pinpoint_ir.Ops.Lor, a, b) }
  end
  else a

and and_expr st =
  let l = loc st in
  let a = eq_expr st in
  if peek_tok st = ANDAND then begin
    advance st;
    let b = and_expr st in
    { Ast.eloc = l; enode = Ast.Ebin (Pinpoint_ir.Ops.Land, a, b) }
  end
  else a

and eq_expr st =
  let l = loc st in
  let a = rel_expr st in
  match peek_tok st with
  | EQ ->
    advance st;
    let b = rel_expr st in
    { Ast.eloc = l; enode = Ast.Ebin (Pinpoint_ir.Ops.Eq, a, b) }
  | NE ->
    advance st;
    let b = rel_expr st in
    { Ast.eloc = l; enode = Ast.Ebin (Pinpoint_ir.Ops.Ne, a, b) }
  | _ -> a

and rel_expr st =
  let l = loc st in
  let a = add_expr st in
  let mk op =
    advance st;
    let b = add_expr st in
    { Ast.eloc = l; enode = Ast.Ebin (op, a, b) }
  in
  match peek_tok st with
  | LT -> mk Pinpoint_ir.Ops.Lt
  | LE -> mk Pinpoint_ir.Ops.Le
  | GT -> mk Pinpoint_ir.Ops.Gt
  | GE -> mk Pinpoint_ir.Ops.Ge
  | _ -> a

and add_expr st =
  let l = loc st in
  let a = ref (mul_expr st) in
  let continue = ref true in
  while !continue do
    match peek_tok st with
    | PLUS ->
      advance st;
      let b = mul_expr st in
      a := { Ast.eloc = l; enode = Ast.Ebin (Pinpoint_ir.Ops.Add, !a, b) }
    | MINUS ->
      advance st;
      let b = mul_expr st in
      a := { Ast.eloc = l; enode = Ast.Ebin (Pinpoint_ir.Ops.Sub, !a, b) }
    | _ -> continue := false
  done;
  !a

and mul_expr st =
  let l = loc st in
  let a = ref (unary st) in
  while peek_tok st = STAR do
    advance st;
    let b = unary st in
    a := { Ast.eloc = l; enode = Ast.Ebin (Pinpoint_ir.Ops.Mul, !a, b) }
  done;
  !a

and unary st =
  let l = loc st in
  match peek_tok st with
  | MINUS ->
    advance st;
    let a = unary st in
    { Ast.eloc = l; enode = Ast.Eun (Pinpoint_ir.Ops.Neg, a) }
  | BANG ->
    advance st;
    let a = unary st in
    { Ast.eloc = l; enode = Ast.Eun (Pinpoint_ir.Ops.Lnot, a) }
  | STAR ->
    (* count the deref depth *)
    let k = stars st in
    let a = unary st in
    { Ast.eloc = l; enode = Ast.Ederef (a, k) }
  | _ -> primary st

and primary st =
  let l = loc st in
  match peek_tok st with
  | INT n ->
    advance st;
    { Ast.eloc = l; enode = Ast.Eint n }
  | KW_TRUE ->
    advance st;
    { Ast.eloc = l; enode = Ast.Ebool true }
  | KW_FALSE ->
    advance st;
    { Ast.eloc = l; enode = Ast.Ebool false }
  | KW_NULL ->
    advance st;
    { Ast.eloc = l; enode = Ast.Enull }
  | KW_MALLOC ->
    advance st;
    expect st LPAREN "expected '(' after malloc";
    expect st RPAREN "expected ')' after malloc(";
    { Ast.eloc = l; enode = Ast.Emalloc }
  | KW_VCALL -> (
    advance st;
    match peek_tok st with
    | STRING group ->
      advance st;
      expect st LPAREN "expected '(' after vcall group";
      let args = ref [] in
      if peek_tok st <> RPAREN then begin
        args := [ expr st ];
        while peek_tok st = COMMA do
          advance st;
          args := expr st :: !args
        done
      end;
      expect st RPAREN "expected ')' after vcall arguments";
      { Ast.eloc = l; enode = Ast.Evcall (group, List.rev !args) }
    | _ -> fail st "expected group string after vcall")
  | IDENT x ->
    advance st;
    if peek_tok st = LPAREN then begin
      advance st;
      let args = ref [] in
      if peek_tok st <> RPAREN then begin
        args := [ expr st ];
        while peek_tok st = COMMA do
          advance st;
          args := expr st :: !args
        done
      end;
      expect st RPAREN "expected ')' after arguments";
      { Ast.eloc = l; enode = Ast.Ecall (x, List.rev !args) }
    end
    else { Ast.eloc = l; enode = Ast.Evar x }
  | LPAREN ->
    advance st;
    let e = expr st in
    expect st RPAREN "expected ')'";
    e
  | _ -> fail st "expected expression"

(* Statements *)
let rec stmt st : Ast.stmt =
  let l = loc st in
  match peek_tok st with
  | KW_INT | KW_BOOL ->
    let t = ty st in
    let x = ident st in
    let init =
      if peek_tok st = ASSIGN then begin
        advance st;
        Some (expr st)
      end
      else None
    in
    expect st SEMI "expected ';' after declaration";
    { Ast.sloc = l; snode = Ast.Sdecl (t, x, init) }
  | STAR ->
    let k = stars st in
    let x = ident st in
    expect st ASSIGN "expected '=' in store";
    let e = expr st in
    expect st SEMI "expected ';' after store";
    { Ast.sloc = l; snode = Ast.Sstore (k, x, e) }
  | KW_IF ->
    advance st;
    expect st LPAREN "expected '(' after if";
    let c = expr st in
    expect st RPAREN "expected ')' after condition";
    let then_ = stmt st in
    let else_ =
      if peek_tok st = KW_ELSE then begin
        advance st;
        Some (stmt st)
      end
      else None
    in
    { Ast.sloc = l; snode = Ast.Sif (c, then_, else_) }
  | KW_WHILE ->
    advance st;
    expect st LPAREN "expected '(' after while";
    let c = expr st in
    expect st RPAREN "expected ')' after condition";
    let body = stmt st in
    { Ast.sloc = l; snode = Ast.Swhile (c, body) }
  | KW_RETURN ->
    advance st;
    if peek_tok st = SEMI then begin
      advance st;
      { Ast.sloc = l; snode = Ast.Sreturn None }
    end
    else begin
      let e = expr st in
      expect st SEMI "expected ';' after return";
      { Ast.sloc = l; snode = Ast.Sreturn (Some e) }
    end
  | LBRACE ->
    advance st;
    let stmts = ref [] in
    while peek_tok st <> RBRACE do
      stmts := stmt st :: !stmts
    done;
    advance st;
    { Ast.sloc = l; snode = Ast.Sblock (List.rev !stmts) }
  | IDENT x when peek2 st = ASSIGN ->
    advance st;
    advance st;
    let e = expr st in
    expect st SEMI "expected ';' after assignment";
    { Ast.sloc = l; snode = Ast.Sassign (x, e) }
  | _ ->
    let e = expr st in
    expect st SEMI "expected ';' after expression";
    { Ast.sloc = l; snode = Ast.Sexpr e }

let rettype st : Pinpoint_ir.Ty.t option =
  match peek_tok st with
  | KW_VOID ->
    advance st;
    None
  | _ -> Some (ty st)

let func st : Ast.fdecl =
  let l = loc st in
  let group =
    if peek_tok st = KW_METHOD then begin
      advance st;
      match peek_tok st with
      | STRING g ->
        advance st;
        Some g
      | _ -> fail st "expected group string after 'method'"
    end
    else None
  in
  let ret = rettype st in
  let name = ident st in
  expect st LPAREN "expected '(' after function name";
  let params = ref [] in
  if peek_tok st <> RPAREN then begin
    let p () =
      let t = ty st in
      let x = ident st in
      (t, x)
    in
    params := [ p () ];
    while peek_tok st = COMMA do
      advance st;
      params := p () :: !params
    done
  end;
  expect st RPAREN "expected ')' after parameters";
  let body = stmt st in
  (match body.Ast.snode with
  | Ast.Sblock _ -> ()
  | _ -> raise (Error ("function body must be a block", l.line)));
  {
    Ast.fname = name;
    params = List.rev !params;
    ret;
    body;
    floc = l;
    unit_name = st.unit_name;
    group;
  }

let program st : Ast.program =
  let funcs = ref [] in
  while peek_tok st <> EOF do
    match peek_tok st with
    | KW_UNIT -> (
      advance st;
      match peek_tok st with
      | STRING s ->
        advance st;
        expect st SEMI "expected ';' after unit declaration";
        st.unit_name <- s
      | _ -> fail st "expected string after 'unit'")
    | _ -> funcs := func st :: !funcs
  done;
  { Ast.funcs = List.rev !funcs }

let parse_string ?(file = "<string>") src =
  let toks =
    try Lexer.tokenize ~file src
    with Lexer.Error (msg, line) -> raise (Error (msg, line))
  in
  let st = { file; toks; pos = 0; unit_name = "main" } in
  program st

(* Streaming interface: tokenize once, replay the token buffer per pass.
   Each [iter_fdecls] hands function ASTs to the callback one at a time,
   so no pass ever materialises the whole program AST — at MLoC scale
   that AST rivals the lowered IR for peak heap. *)

type stream = state

let stream ?(file = "<string>") src =
  let toks =
    try Lexer.tokenize ~file src
    with Lexer.Error (msg, line) -> raise (Error (msg, line))
  in
  { file; toks; pos = 0; unit_name = "main" }

let iter_fdecls (st : stream) f =
  st.pos <- 0;
  st.unit_name <- "main";
  while peek_tok st <> EOF do
    match peek_tok st with
    | KW_UNIT -> (
      advance st;
      match peek_tok st with
      | STRING s ->
        advance st;
        expect st SEMI "expected ';' after unit declaration";
        st.unit_name <- s
      | _ -> fail st "expected string after 'unit'")
    | _ -> f (func st)
  done

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse_string ~file:path src
