(** Lowering MC ASTs into the IR.

    Responsibilities:
    - flatten expressions into three-address statements with temporaries;
    - desugar non-boolean conditions ([if (p)] becomes [if (p != 0)]);
    - unroll every loop once ([while (c) S] lowers as [if (c) S], the
      paper's soundy treatment of loops, §4.2);
    - produce a single-entry / single-exit CFG whose unique [Return] lives
      in the exit block (the paper assumes one return per function);
    - remove unreachable blocks (code after [return]);
    - run SSA construction and φ gating.

    The result satisfies [Func.validate], [Ssa.is_ssa], and has a DAG
    CFG. *)

exception Error of string * Ast.loc

val func_sigs : Ast.program -> (string, Ty_sig.t) Hashtbl.t
(** Signatures of all functions declared in the program. *)

val method_groups : Ast.program -> (string, string list) Hashtbl.t
(** Method-group table for virtual dispatch (group -> member functions). *)

val lower_fdecl :
  ?groups:(string, string list) Hashtbl.t ->
  (string, Ty_sig.t) Hashtbl.t ->
  Ast.fdecl ->
  Pinpoint_ir.Func.t
(** Lower one function (the full per-function pipeline described above).
    [vcall] dispatch needs the [groups] table; it is lowered CHA-style
    into a guarded chain of direct calls over an opaque selector. *)

val compile : Ast.program -> Pinpoint_ir.Prog.t
(** Lower a whole program. *)

val compile_string : ?file:string -> string -> Pinpoint_ir.Prog.t
(** Parse and compile MC source text. *)

val compile_file : string -> Pinpoint_ir.Prog.t

val compile_files : string list -> Pinpoint_ir.Prog.t
(** Parse each file and compile their concatenation (in argument order) as
    one program.  Function signatures and method groups are resolved
    across files, so calls may cross file boundaries — the multi-file
    subject model of the analysis server (DESIGN.md §4.13). *)
