(** Abstract syntax of MC, the mini-C surface language.

    MC is the concrete syntax for the paper's analysis language (§3): it
    has integers, booleans, multi-level pointers, [malloc]/[free],
    [if]/[else], [while], calls and returns — and deliberately no
    address-of operator, no arrays and no structs (the paper collapses
    arrays/unions to single elements anyway, §4.2).  Pointers therefore
    originate only from [malloc], parameters and loads, exactly as in the
    paper's examples. *)

type loc = Pinpoint_ir.Stmt.loc

type ty = Pinpoint_ir.Ty.t

type binop = Pinpoint_ir.Ops.binop
type unop = Pinpoint_ir.Ops.unop

type expr = { eloc : loc; enode : enode }

and enode =
  | Eint of int
  | Ebool of bool
  | Enull
  | Evar of string
  | Ederef of expr * int      (** [*...*e] with the star count *)
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Ecall of string * expr list
  | Evcall of string * expr list
      (** virtual dispatch to a method group, resolved CHA-style *)
  | Emalloc                   (** [malloc()] *)

type stmt = { sloc : loc; snode : snode }

and snode =
  | Sdecl of ty * string * expr option   (** [ty x = e;] *)
  | Sassign of string * expr             (** [x = e;] *)
  | Sstore of int * string * expr        (** [*...*x = e;] with star count *)
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sreturn of expr option
  | Sexpr of expr                        (** expression statement (calls) *)
  | Sblock of stmt list

type fdecl = {
  fname : string;
  params : (ty * string) list;
  ret : ty option;
  body : stmt;
  floc : loc;
  unit_name : string;  (** "compilation unit" the function belongs to *)
  group : string option;
      (** method group for virtual dispatch ([method "g" ...]) *)
}

type program = { funcs : fdecl list }

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_fdecl : Format.formatter -> fdecl -> unit
val pp_program : Format.formatter -> program -> unit
(** Printers emit valid MC concrete syntax; [Parser.parse_string] of the
    output re-parses to an equivalent program (round-trip property tested
    in the suite). *)
