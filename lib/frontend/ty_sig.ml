open Pinpoint_ir

type t = { ret : Ty.t option; params : Ty.t list option }

let intrinsic = function
  | "free" -> Some { ret = None; params = Some [ Ty.Ptr Ty.Int ] }
  | "print" | "output" | "use" -> Some { ret = None; params = None }
  | "fgetc" | "input" -> Some { ret = Some Ty.Int; params = Some [] }
  | "vselect" -> Some { ret = Some Ty.Int; params = Some [] }
  | "getpass" -> Some { ret = Some Ty.Int; params = Some [] }
  | "fopen" -> Some { ret = Some (Ty.Ptr Ty.Int); params = Some [ Ty.Int ] }
  | "sendto" -> Some { ret = None; params = Some [ Ty.Int ] }
  | "memset" -> Some { ret = None; params = None }
  | "memcpy" -> Some { ret = None; params = None }
  | _ -> None
