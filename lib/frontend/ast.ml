type loc = Pinpoint_ir.Stmt.loc
type ty = Pinpoint_ir.Ty.t
type binop = Pinpoint_ir.Ops.binop
type unop = Pinpoint_ir.Ops.unop

type expr = { eloc : loc; enode : enode }

and enode =
  | Eint of int
  | Ebool of bool
  | Enull
  | Evar of string
  | Ederef of expr * int
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Ecall of string * expr list
  | Evcall of string * expr list
  | Emalloc

type stmt = { sloc : loc; snode : snode }

and snode =
  | Sdecl of ty * string * expr option
  | Sassign of string * expr
  | Sstore of int * string * expr
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sreturn of expr option
  | Sexpr of expr
  | Sblock of stmt list

type fdecl = {
  fname : string;
  params : (ty * string) list;
  ret : ty option;
  body : stmt;
  floc : loc;
  unit_name : string;
  group : string option;
}

type program = { funcs : fdecl list }

open Format

let stars n = String.make n '*'

let pp_ty ppf (t : ty) =
  let rec base = function
    | Pinpoint_ir.Ty.Int -> "int"
    | Pinpoint_ir.Ty.Bool -> "bool"
    | Pinpoint_ir.Ty.Ptr t -> base t
  in
  fprintf ppf "%s%s" (base t) (stars (Pinpoint_ir.Ty.pointer_depth t))

let rec pp_expr ppf e =
  match e.enode with
  | Eint n -> pp_print_int ppf n
  | Ebool b -> pp_print_bool ppf b
  | Enull -> pp_print_string ppf "null"
  | Evar x -> pp_print_string ppf x
  | Ederef (e, k) -> fprintf ppf "(%s%a)" (stars k) pp_expr e
  | Ebin (op, a, b) ->
    fprintf ppf "(%a %a %a)" pp_expr a Pinpoint_ir.Ops.pp_binop op pp_expr b
  | Eun (op, a) -> fprintf ppf "(%a%a)" Pinpoint_ir.Ops.pp_unop op pp_expr a
  | Ecall (f, args) ->
    fprintf ppf "%s(%a)" f (Pinpoint_util.Pp.list pp_expr) args
  | Evcall (g, args) ->
    fprintf ppf "vcall %S(%a)" g (Pinpoint_util.Pp.list pp_expr) args
  | Emalloc -> pp_print_string ppf "malloc()"

let rec pp_stmt ppf s =
  match s.snode with
  | Sdecl (t, x, None) -> fprintf ppf "%a %s;" pp_ty t x
  | Sdecl (t, x, Some e) -> fprintf ppf "%a %s = %a;" pp_ty t x pp_expr e
  | Sassign (x, e) -> fprintf ppf "%s = %a;" x pp_expr e
  | Sstore (k, x, e) -> fprintf ppf "%s%s = %a;" (stars k) x pp_expr e
  | Sif (c, t, None) -> fprintf ppf "if (%a) %a" pp_expr c pp_stmt t
  | Sif (c, t, Some e) ->
    fprintf ppf "if (%a) %a else %a" pp_expr c pp_stmt t pp_stmt e
  | Swhile (c, b) -> fprintf ppf "while (%a) %a" pp_expr c pp_stmt b
  | Sreturn None -> pp_print_string ppf "return;"
  | Sreturn (Some e) -> fprintf ppf "return %a;" pp_expr e
  | Sexpr e -> fprintf ppf "%a;" pp_expr e
  | Sblock stmts ->
    fprintf ppf "{@[<v 2>";
    List.iter (fun s -> fprintf ppf "@,%a" pp_stmt s) stmts;
    fprintf ppf "@]@,}"

let pp_fdecl ppf (f : fdecl) =
  let ret ppf = function
    | None -> pp_print_string ppf "void"
    | Some t -> pp_ty ppf t
  in
  (match f.group with
  | Some g -> fprintf ppf "method %S " g
  | None -> ());
  fprintf ppf "@[<v>%a %s(%a) %a@]@." ret f.ret f.fname
    (Pinpoint_util.Pp.list (fun ppf (t, x) -> fprintf ppf "%a %s" pp_ty t x))
    f.params pp_stmt f.body

let pp_program ppf (p : program) =
  let current_unit = ref "" in
  List.iter
    (fun f ->
      if f.unit_name <> !current_unit then begin
        fprintf ppf "unit %S;@.@." f.unit_name;
        current_unit := f.unit_name
      end;
      pp_fdecl ppf f;
      pp_print_newline ppf ())
    p.funcs
