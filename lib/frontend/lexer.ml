type token =
  | INT of int
  | IDENT of string
  | STRING of string
  | KW_INT | KW_BOOL | KW_VOID | KW_IF | KW_ELSE | KW_WHILE | KW_RETURN
  | KW_TRUE | KW_FALSE | KW_NULL | KW_UNIT | KW_MALLOC | KW_METHOD | KW_VCALL
  | LPAREN | RPAREN | LBRACE | RBRACE | COMMA | SEMI
  | STAR | PLUS | MINUS | BANG
  | ASSIGN | EQ | NE | LT | LE | GT | GE | ANDAND | OROR
  | EOF

type located = { tok : token; line : int }

exception Error of string * int

let keyword = function
  | "int" -> Some KW_INT
  | "bool" -> Some KW_BOOL
  | "void" -> Some KW_VOID
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "return" -> Some KW_RETURN
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | "null" | "NULL" -> Some KW_NULL
  | "unit" -> Some KW_UNIT
  | "malloc" -> Some KW_MALLOC
  | "method" -> Some KW_METHOD
  | "vcall" -> Some KW_VCALL
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize ?file:_ src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let emit tok = toks := { tok; line = !line } :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && !i + 1 < n && src.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then raise (Error ("unterminated block comment", !line))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      emit (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      match keyword word with Some kw -> emit kw | None -> emit (IDENT word)
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '"' then begin
          closed := true;
          incr i
        end
        else begin
          if src.[!i] = '\n' then incr line;
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      if not !closed then raise (Error ("unterminated string literal", !line));
      emit (STRING (Buffer.contents buf))
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some "==" -> emit EQ; i := !i + 2
      | Some "!=" -> emit NE; i := !i + 2
      | Some "<=" -> emit LE; i := !i + 2
      | Some ">=" -> emit GE; i := !i + 2
      | Some "&&" -> emit ANDAND; i := !i + 2
      | Some "||" -> emit OROR; i := !i + 2
      | _ -> (
        (match c with
        | '(' -> emit LPAREN
        | ')' -> emit RPAREN
        | '{' -> emit LBRACE
        | '}' -> emit RBRACE
        | ',' -> emit COMMA
        | ';' -> emit SEMI
        | '*' -> emit STAR
        | '+' -> emit PLUS
        | '-' -> emit MINUS
        | '!' -> emit BANG
        | '=' -> emit ASSIGN
        | '<' -> emit LT
        | '>' -> emit GT
        | c -> raise (Error (Printf.sprintf "unexpected character %C" c, !line)));
        incr i)
    end
  done;
  emit EOF;
  Array.of_list (List.rev !toks)

let pp_token ppf t =
  Format.pp_print_string ppf
    (match t with
    | INT n -> string_of_int n
    | IDENT s -> s
    | STRING s -> Printf.sprintf "%S" s
    | KW_INT -> "int"
    | KW_BOOL -> "bool"
    | KW_VOID -> "void"
    | KW_IF -> "if"
    | KW_ELSE -> "else"
    | KW_WHILE -> "while"
    | KW_RETURN -> "return"
    | KW_TRUE -> "true"
    | KW_FALSE -> "false"
    | KW_NULL -> "null"
    | KW_UNIT -> "unit"
    | KW_MALLOC -> "malloc"
    | KW_METHOD -> "method"
    | KW_VCALL -> "vcall"
    | LPAREN -> "("
    | RPAREN -> ")"
    | LBRACE -> "{"
    | RBRACE -> "}"
    | COMMA -> ","
    | SEMI -> ";"
    | STAR -> "*"
    | PLUS -> "+"
    | MINUS -> "-"
    | BANG -> "!"
    | ASSIGN -> "="
    | EQ -> "=="
    | NE -> "!="
    | LT -> "<"
    | LE -> "<="
    | GT -> ">"
    | GE -> ">="
    | ANDAND -> "&&"
    | OROR -> "||"
    | EOF -> "<eof>")
