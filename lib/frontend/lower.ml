open Pinpoint_ir

exception Error of string * Ast.loc

let err loc fmt = Format.kasprintf (fun s -> raise (Error (s, loc))) fmt

type env = {
  f : Func.t;
  sigs : (string, Ty_sig.t) Hashtbl.t;
  groups : (string, string list) Hashtbl.t;
      (* method group -> member function names, CHA-style *)
  mutable cur : int;  (** current block id *)
  mutable terminated : bool;  (** current block already has a real terminator *)
  mutable scopes : (string, Var.t) Hashtbl.t list;
  ret_var : Var.t option;
  exit_bid : int;
}

let push_scope env = env.scopes <- Hashtbl.create 16 :: env.scopes
let pop_scope env = env.scopes <- List.tl env.scopes

let declare env loc name ty =
  match env.scopes with
  | [] -> assert false
  | scope :: _ ->
    if Hashtbl.mem scope name then err loc "redeclaration of %s" name;
    let v = Var.make env.f.Func.vgen name ty in
    Hashtbl.add scope name v;
    v

let lookup env loc name =
  let rec go = function
    | [] -> err loc "undeclared variable %s" name
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with Some v -> v | None -> go rest)
  in
  go env.scopes

let emit env ?(loc = Stmt.no_loc) kind =
  let s = Stmt.make env.f.Func.sgen ~loc kind in
  Func.append env.f env.cur s;
  s

let new_block env =
  let b = Func.add_block env.f in
  b.Func.bid

let start_block env bid =
  env.cur <- bid;
  env.terminated <- false

let terminate env term =
  if not env.terminated then begin
    Func.set_term env.f env.cur term;
    env.terminated <- true
  end

let temp env ty =
  let name = Printf.sprintf "t%d" (Pinpoint_util.Id_gen.peek env.f.Func.vgen) in
  Var.make env.f.Func.vgen name ty

let operand_ty_exn loc o =
  match Stmt.operand_ty o with
  | Some t -> t
  | None -> err loc "cannot determine the type of null here"

(* When the current block was terminated (by a return), any further
   statements are unreachable; lower them into a fresh dead block so the
   lowering stays well formed.  The cleanup pass drops them. *)
let ensure_open env =
  if env.terminated then begin
    let b = new_block env in
    start_block env b
  end

let rec lower_expr env ?expect (e : Ast.expr) : Stmt.operand =
  ensure_open env;
  let loc = e.Ast.eloc in
  match e.Ast.enode with
  | Ast.Eint n -> Stmt.Oint n
  | Ast.Ebool b -> Stmt.Obool b
  | Ast.Enull -> Stmt.Onull
  | Ast.Evar x -> Stmt.Ovar (lookup env loc x)
  | Ast.Ederef (inner, k) ->
    let base = lower_expr env inner in
    let bty = operand_ty_exn loc base in
    let rty =
      match Ty.deref_k bty k with
      | Some t -> t
      | None -> err loc "cannot dereference %s %d time(s)" (Ty.to_string bty) k
    in
    let v = temp env rty in
    ignore (emit env ~loc (Stmt.Load (v, base, k)));
    Stmt.Ovar v
  | Ast.Ebin (op, a, b) ->
    let oa = lower_expr env a in
    let ob = lower_expr env b in
    let aty =
      match Stmt.operand_ty oa with
      | Some t -> t
      | None -> (
        match Stmt.operand_ty ob with Some t -> t | None -> Ty.Ptr Ty.Int)
    in
    let rty = Ops.binop_result op aty in
    let v = temp env rty in
    ignore (emit env ~loc (Stmt.Binop (v, op, oa, ob)));
    Stmt.Ovar v
  | Ast.Eun (op, a) ->
    let oa = lower_expr env a in
    let aty = Option.value (Stmt.operand_ty oa) ~default:Ty.Int in
    let v = temp env (Ops.unop_result op aty) in
    ignore (emit env ~loc (Stmt.Unop (v, op, oa)));
    Stmt.Ovar v
  | Ast.Emalloc ->
    let ty = Option.value expect ~default:(Ty.Ptr Ty.Int) in
    if not (Ty.is_pointer ty) then err loc "malloc() needs a pointer type context";
    let v = temp env ty in
    ignore (emit env ~loc (Stmt.Alloc v));
    Stmt.Ovar v
  | Ast.Ecall (name, args) -> (
    match lower_call env ~loc ?expect name args ~need_value:true with
    | Some v -> Stmt.Ovar v
    | None -> err loc "void call %s used as a value" name)
  | Ast.Evcall (group, args) -> (
    match lower_vcall env ~loc ?expect group args ~need_value:true with
    | Some v -> Stmt.Ovar v
    | None -> err loc "void vcall %S used as a value" group)

and lower_call env ~loc ?expect name args ~need_value : Var.t option =
  let arg_ops = List.map (fun a -> lower_expr env a) args in
  let sg =
    match Hashtbl.find_opt env.sigs name with
    | Some s -> Some s
    | None -> Ty_sig.intrinsic name
  in
  (* Arity check against known signatures. *)
  (match sg with
  | Some { Ty_sig.params = Some ps; _ } ->
    if List.length ps <> List.length arg_ops then
      err loc "%s expects %d argument(s), got %d" name (List.length ps)
        (List.length arg_ops)
  | _ -> ());
  let ret_ty =
    match sg with
    | Some { Ty_sig.ret; _ } -> ret
    | None ->
      (* Unknown external: give it a value type only if the context needs
         one. *)
      if need_value then Some (Option.value expect ~default:Ty.Int) else None
  in
  let recvs =
    match ret_ty with
    | Some t when need_value -> [ temp env t ]
    | Some t ->
      (* value returned but discarded; keep a receiver for uniformity *)
      [ temp env t ]
    | None -> []
  in
  ignore (emit env ~loc (Stmt.Call { Stmt.callee = name; args = arg_ops; recvs }));
  match recvs with v :: _ -> Some v | [] -> None

(* Virtual dispatch (paper §4.2's class-hierarchy resolution): the call may
   reach any member of the group.  Lowered as a guarded chain over an
   opaque selector, which is exactly CHA's over-approximation and keeps
   every downstream analysis unchanged:

     sel <- vselect();
     if (sel == 0) r = m0(args) else if (sel == 1) r = m1(args) ... *)
and lower_vcall env ~loc ?expect group args ~need_value : Var.t option =
  ignore expect;
  let members =
    match Hashtbl.find_opt env.groups group with
    | Some (_ :: _ as ms) -> ms
    | _ -> err loc "no methods declared for group %S" group
  in
  let ret_ty =
    match Hashtbl.find_opt env.sigs (List.hd members) with
    | Some { Ty_sig.ret; _ } -> ret
    | None -> None
  in
  (match ret_ty with
  | None when need_value -> err loc "void vcall %S used as a value" group
  | _ -> ());
  (* evaluate arguments once *)
  let arg_ops = List.map (fun a -> lower_expr env a) args in
  let sel = temp env Ty.Int in
  ignore
    (emit env ~loc (Stmt.Call { Stmt.callee = "vselect"; args = []; recvs = [ sel ] }));
  let result = Option.map (fun t -> temp env t) ret_ty in
  let n = List.length members in
  let emit_member name =
    let recvs = match result with Some _ -> [ temp env (Option.get ret_ty) ] | None -> [] in
    ignore (emit env ~loc (Stmt.Call { Stmt.callee = name; args = arg_ops; recvs }));
    match (result, recvs) with
    | Some r, [ v ] -> ignore (emit env ~loc (Stmt.Assign (r, Stmt.Ovar v)))
    | _ -> ()
  in
  let rec chain i = function
    | [] -> ()
    | [ last ] -> emit_member last
    | m :: rest ->
      let guard = temp env Ty.Bool in
      ignore (emit env ~loc (Stmt.Binop (guard, Ops.Eq, Stmt.Ovar sel, Stmt.Oint i)));
      let then_b = new_block env in
      let else_b = new_block env in
      let merge_b = new_block env in
      terminate env (Func.Br (Stmt.Ovar guard, then_b, else_b));
      start_block env then_b;
      emit_member m;
      terminate env (Func.Jump merge_b);
      start_block env else_b;
      chain (i + 1) rest;
      terminate env (Func.Jump merge_b);
      start_block env merge_b
  in
  ignore n;
  chain 0 members;
  result

(* Conditions must be boolean; integers and pointers compare against 0
   (null is address 0). *)
let lower_cond env (e : Ast.expr) : Stmt.operand =
  let loc = e.Ast.eloc in
  let o = lower_expr env e in
  match Stmt.operand_ty o with
  | Some Ty.Bool -> o
  | Some Ty.Int | Some (Ty.Ptr _) | None ->
    let v = temp env Ty.Bool in
    ignore (emit env ~loc (Stmt.Binop (v, Ops.Ne, o, Stmt.Oint 0)));
    Stmt.Ovar v

let rec lower_stmt env (s : Ast.stmt) : unit =
  let loc = s.Ast.sloc in
  match s.Ast.snode with
  | Ast.Sdecl (ty, x, init) ->
    ensure_open env;
    let init_op = Option.map (fun e -> lower_expr env ~expect:ty e) init in
    let v = declare env loc x ty in
    (match init_op with
    | Some o -> ignore (emit env ~loc (Stmt.Assign (v, o)))
    | None -> ())
  | Ast.Sassign (x, e) ->
    ensure_open env;
    let v = lookup env loc x in
    let o = lower_expr env ~expect:v.Var.ty e in
    ignore (emit env ~loc (Stmt.Assign (v, o)))
  | Ast.Sstore (k, x, e) ->
    ensure_open env;
    let v = lookup env loc x in
    let vty =
      match Ty.deref_k v.Var.ty k with
      | Some t -> t
      | None ->
        err loc "cannot store through %s %d time(s)" (Ty.to_string v.Var.ty) k
    in
    let o = lower_expr env ~expect:vty e in
    ignore (emit env ~loc (Stmt.Store (Stmt.Ovar v, k, o)))
  | Ast.Sif (c, then_s, else_s) ->
    ensure_open env;
    let cond = lower_cond env c in
    let then_b = new_block env in
    let else_b = new_block env in
    let merge_b = new_block env in
    terminate env (Func.Br (cond, then_b, else_b));
    start_block env then_b;
    push_scope env;
    lower_stmt env then_s;
    pop_scope env;
    terminate env (Func.Jump merge_b);
    start_block env else_b;
    (match else_s with
    | Some es ->
      push_scope env;
      lower_stmt env es;
      pop_scope env
    | None -> ());
    terminate env (Func.Jump merge_b);
    start_block env merge_b
  | Ast.Swhile (c, body) ->
    (* Loop unrolling (§4.2): the body executes at most once. *)
    lower_stmt env { s with Ast.snode = Ast.Sif (c, body, None) }
  | Ast.Sreturn e ->
    ensure_open env;
    (match (e, env.ret_var) with
    | Some e, Some rv ->
      let o = lower_expr env ~expect:rv.Var.ty e in
      ignore (emit env ~loc (Stmt.Assign (rv, o)))
    | Some _, None -> err loc "void function returns a value"
    | None, Some _ -> err loc "non-void function returns no value"
    | None, None -> ());
    terminate env (Func.Jump env.exit_bid)
  | Ast.Sexpr e -> (
    ensure_open env;
    match e.Ast.enode with
    | Ast.Ecall (name, args) ->
      ignore (lower_call env ~loc:e.Ast.eloc name args ~need_value:false)
    | Ast.Evcall (group, args) ->
      ignore (lower_vcall env ~loc:e.Ast.eloc group args ~need_value:false)
    | _ -> ignore (lower_expr env e))
  | Ast.Sblock stmts ->
    push_scope env;
    List.iter (lower_stmt env) stmts;
    pop_scope env

(* Remove blocks unreachable from the entry, remapping ids. *)
let remove_unreachable (f : Func.t) =
  let g = Func.cfg f in
  let reach = Pinpoint_util.Digraph.reachable g f.Func.entry in
  let nb = Func.n_blocks f in
  let remap = Array.make nb (-1) in
  let next = ref 0 in
  for b = 0 to nb - 1 do
    if reach.(b) then begin
      remap.(b) <- !next;
      incr next
    end
  done;
  if !next <> nb then begin
    let blocks = Array.make !next (Func.block f f.Func.entry) in
    for b = 0 to nb - 1 do
      if remap.(b) <> -1 then begin
        let old = Func.block f b in
        let term =
          match old.Func.term with
          | Func.Jump t -> Func.Jump remap.(t)
          | Func.Br (c, t, e) -> Func.Br (c, remap.(t), remap.(e))
          | Func.Exit -> Func.Exit
        in
        (* φ arguments from removed predecessors are dropped (pre-SSA there
           are none, but stay general). *)
        let stmts =
          List.map
            (fun s ->
              (match s.Stmt.kind with
              | Stmt.Phi (v, args) ->
                let args =
                  List.filter_map
                    (fun a ->
                      if remap.(a.Stmt.pred) = -1 then None
                      else Some { a with Stmt.pred = remap.(a.Stmt.pred) })
                    args
                in
                s.Stmt.kind <- Stmt.Phi (v, args)
              | _ -> ());
              s)
            old.Func.stmts
        in
        blocks.(remap.(b)) <- { Func.bid = remap.(b); stmts; term }
      end
    done;
    f.Func.blocks <- blocks;
    f.Func.entry <- remap.(f.Func.entry);
    if remap.(f.Func.exit_) = -1 then
      (* The exit became unreachable (e.g. trivially diverging function);
         keep an empty reachable exit to preserve the invariant. *)
      (let b = Func.add_block f in
       f.Func.exit_ <- b.Func.bid)
    else f.Func.exit_ <- remap.(f.Func.exit_)
  end

let lower_fdecl ?(groups = Hashtbl.create 0) sigs (fd : Ast.fdecl) : Func.t =
  (* Create the function and its parameter variables. *)
  let f = Func.create fd.Ast.fname ~params:[] ~ret_ty:fd.Ast.ret in
  let param_vars =
    List.map
      (fun (ty, name) -> Var.make f.Func.vgen ~kind:Var.Formal name ty)
      fd.Ast.params
  in
  f.Func.params <- param_vars;
  let exit_b = Func.add_block f in
  f.Func.exit_ <- exit_b.Func.bid;
  let ret_var =
    Option.map (fun ty -> Var.make f.Func.vgen "$ret" ty) fd.Ast.ret
  in
  let env =
    {
      f;
      sigs;
      groups;
      cur = f.Func.entry;
      terminated = false;
      scopes = [];
      ret_var;
      exit_bid = exit_b.Func.bid;
    }
  in
  push_scope env;
  List.iter
    (fun ((_, name), v) -> Hashtbl.add (List.hd env.scopes) name v)
    (List.combine fd.Ast.params param_vars);
  push_scope env;
  (match fd.Ast.body.Ast.snode with
  | Ast.Sblock stmts -> List.iter (lower_stmt env) stmts
  | _ -> lower_stmt env fd.Ast.body);
  pop_scope env;
  pop_scope env;
  (* Fall-through to the exit. *)
  terminate env (Func.Jump exit_b.Func.bid);
  (* The unique return. *)
  let ret_operands = match ret_var with Some rv -> [ Stmt.Ovar rv ] | None -> [] in
  let ret_stmt = Stmt.make f.Func.sgen ~loc:fd.Ast.floc (Stmt.Return ret_operands) in
  Func.append f exit_b.Func.bid ret_stmt;
  Func.set_term f exit_b.Func.bid Func.Exit;
  remove_unreachable f;
  Ssa.run f;
  Gating.run f;
  f

let func_sigs (p : Ast.program) =
  let sigs : (string, Ty_sig.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (fd : Ast.fdecl) ->
      Hashtbl.replace sigs fd.Ast.fname
        {
          Ty_sig.ret = fd.Ast.ret;
          params = Some (List.map fst fd.Ast.params);
        })
    p.Ast.funcs;
  sigs

let method_groups (p : Ast.program) =
  let groups : (string, string list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (fd : Ast.fdecl) ->
      match fd.Ast.group with
      | Some g ->
        let cur = Option.value (Hashtbl.find_opt groups g) ~default:[] in
        Hashtbl.replace groups g (cur @ [ fd.Ast.fname ])
      | None -> ())
    p.Ast.funcs;
  groups

let compile (p : Ast.program) : Prog.t =
  let sigs = func_sigs p in
  let groups = method_groups p in
  let prog = Prog.create () in
  List.iter
    (fun (fd : Ast.fdecl) ->
      let f = lower_fdecl ~groups sigs fd in
      Prog.add prog ~unit_name:fd.Ast.unit_name f)
    p.Ast.funcs;
  prog

(* Streaming compilation: tokenize each source once, parse twice.  The
   first pass collects signatures and method groups (forward calls and
   vcall lowering need the whole program's), the second lowers; both
   drop every function's AST as soon as it is consumed, so peak heap
   holds the token buffers and the growing IR — never the whole-program
   AST, which rivals the IR for size at MLoC scale. *)
let compile_streams streams =
  let sigs : (string, Ty_sig.t) Hashtbl.t = Hashtbl.create 64 in
  let groups : (string, string list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun stm ->
      Parser.iter_fdecls stm (fun (fd : Ast.fdecl) ->
          Hashtbl.replace sigs fd.Ast.fname
            {
              Ty_sig.ret = fd.Ast.ret;
              params = Some (List.map fst fd.Ast.params);
            };
          match fd.Ast.group with
          | Some g ->
            let cur = Option.value (Hashtbl.find_opt groups g) ~default:[] in
            Hashtbl.replace groups g (cur @ [ fd.Ast.fname ])
          | None -> ()))
    streams;
  let prog = Prog.create () in
  List.iter
    (fun stm ->
      Parser.iter_fdecls stm (fun (fd : Ast.fdecl) ->
          let f = lower_fdecl ~groups sigs fd in
          Prog.add prog ~unit_name:fd.Ast.unit_name f))
    streams;
  prog

let compile_string ?(file = "<string>") src =
  compile_streams [ Parser.stream ~file src ]

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

let compile_file path = compile_streams [ Parser.stream ~file:path (read_file path) ]

let compile_files paths =
  compile_streams
    (List.map (fun p -> Parser.stream ~file:p (read_file p)) paths)
